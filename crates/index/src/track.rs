//! Per-track spatio-temporal sketches.
//!
//! Focus's index answers "which clusters contain class X"; trajectory
//! queries ("cars that crossed from the left lane to the driveway",
//! "anything moving faster than 30 px/s") additionally need *where a track
//! went*. Scanning every member frame at query time would be O(frames);
//! instead ingest folds each observation into a compact per-track
//! [`TrackSketch`] — the coarse grid cells the bounding-box path visited,
//! its entry/exit cells, time bounds and displacement-speed stats — so
//! query planning only intersects sketches: O(tracks).
//!
//! Sketches are **conservative**: every quantity is an over-approximation
//! of the exact trace (a visited point always lands in a visited cell, the
//! speed extrema cover every consecutive-observation pair), so a predicate
//! evaluated against a sketch can admit a track that does not exactly
//! satisfy it, but never rejects one that does. That is what lets the query
//! planner drop candidates *before* ground-truth verification without
//! losing recall.
//!
//! Sketches are accumulated per seal window by a [`TrackSketcher`] and
//! merged across windows with [`TrackSketch::absorb`], which is commutative
//! and associative over the fields any predicate reads — so the merged
//! whole-life sketch of a track is independent of where segment seals fell.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use focus_video::{StreamId, TrackId};

/// Side length of one sketch grid cell, in pixels. At 1280×720 frames this
/// yields a 16×9 grid — coarse enough that a sketch stays a few dozen bytes,
/// fine enough that region predicates prune most off-path tracks.
pub const TRACK_CELL_PX: f64 = 80.0;

/// Globally unique identifier of a track: the stream it was observed on plus
/// the generator's stream-local track number (track ids restart at zero per
/// stream, so the raw [`TrackId`] alone is ambiguous across cameras).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TrackKey {
    /// The stream (camera) the track was observed on.
    pub stream: StreamId,
    /// The generator's stream-local track id.
    pub track: TrackId,
}

impl TrackKey {
    /// Builds a key.
    pub fn new(stream: StreamId, track: TrackId) -> Self {
        Self { stream, track }
    }
}

/// Packs grid cell coordinates into one code (`cy` in the high half).
pub fn cell_code(cx: u16, cy: u16) -> u32 {
    (cy as u32) << 16 | cx as u32
}

/// Unpacks a cell code back into `(cx, cy)` coordinates.
pub fn cell_coords(code: u32) -> (u16, u16) {
    ((code & 0xFFFF) as u16, (code >> 16) as u16)
}

/// The grid cell containing pixel position `(x, y)` (clamped at zero, so
/// boxes nudged past the frame edge still land in an edge cell).
pub fn cell_of(x: f64, y: f64) -> u32 {
    let cx = (x.max(0.0) / TRACK_CELL_PX) as u32;
    let cy = (y.max(0.0) / TRACK_CELL_PX) as u32;
    cell_code(
        cx.min(u16::MAX as u32) as u16,
        cy.min(u16::MAX as u32) as u16,
    )
}

/// Compact spatio-temporal summary of one track (or of one seal window of
/// it): the grid cells its bounding-box centroid visited, where it entered
/// and left, when it was live, and its displacement-speed extrema.
///
/// Whole-life sketches are produced by [`absorb`](Self::absorb)-merging the
/// per-window sketches persisted in each segment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackSketch {
    /// The track this sketch summarizes.
    pub key: TrackKey,
    /// Sorted, deduplicated [`cell_code`]s of every cell the track's
    /// centroid visited.
    pub cells: Vec<u32>,
    /// Cell of the earliest observation.
    pub entry_cell: u32,
    /// Cell of the latest observation.
    pub exit_cell: u32,
    /// Timestamp of the earliest observation, seconds since stream start.
    pub t_start: f64,
    /// Timestamp of the latest observation, seconds since stream start.
    pub t_end: f64,
    /// Number of observations folded in.
    pub observations: u64,
    /// Number of consecutive-observation pairs with positive time delta
    /// that contributed a speed sample. Zero for single-observation tracks;
    /// the two speed fields below are zero (not meaningful) in that case.
    pub speed_pairs: u64,
    /// Minimum displacement speed over all pairs, px/sec.
    pub min_speed: f64,
    /// Maximum displacement speed over all pairs, px/sec.
    pub max_speed: f64,
}

impl TrackSketch {
    /// A sketch of a single observation at `(x, y)` pixels, `secs` seconds
    /// since stream start.
    pub fn first(key: TrackKey, secs: f64, x: f64, y: f64) -> Self {
        let cell = cell_of(x, y);
        TrackSketch {
            key,
            cells: vec![cell],
            entry_cell: cell,
            exit_cell: cell,
            t_start: secs,
            t_end: secs,
            observations: 1,
            speed_pairs: 0,
            min_speed: 0.0,
            max_speed: 0.0,
        }
    }

    /// Adds `cell` to the visited set, keeping it sorted and deduplicated.
    fn add_cell(&mut self, cell: u32) {
        if let Err(pos) = self.cells.binary_search(&cell) {
            self.cells.insert(pos, cell);
        }
    }

    /// Folds in one later observation (observations of a track arrive in
    /// strictly increasing time order).
    fn observe(&mut self, secs: f64, x: f64, y: f64) {
        let cell = cell_of(x, y);
        self.add_cell(cell);
        if secs >= self.t_end {
            self.t_end = secs;
            self.exit_cell = cell;
        }
        self.observations += 1;
    }

    /// Records one consecutive-pair speed sample, px/sec.
    fn add_speed(&mut self, speed: f64) {
        if self.speed_pairs == 0 {
            self.min_speed = speed;
            self.max_speed = speed;
        } else {
            self.min_speed = self.min_speed.min(speed);
            self.max_speed = self.max_speed.max(speed);
        }
        self.speed_pairs += 1;
    }

    /// Merges another window of the same track into this sketch.
    ///
    /// Every field merges commutatively and associatively (cell union,
    /// entry/exit by time bound, time/speed extrema, integer counts), so
    /// the whole-life merge is *byte-identical* no matter how seal
    /// boundaries partitioned the track — there is deliberately no
    /// float-summation-order-sensitive field (a mean-speed sum was dropped
    /// for exactly this reason).
    ///
    /// # Panics
    ///
    /// Panics if the two sketches describe different tracks.
    pub fn absorb(&mut self, other: &TrackSketch) {
        assert_eq!(self.key, other.key, "absorb requires matching track keys");
        for cell in &other.cells {
            self.add_cell(*cell);
        }
        if other.t_start < self.t_start {
            self.t_start = other.t_start;
            self.entry_cell = other.entry_cell;
        }
        if other.t_end > self.t_end {
            self.t_end = other.t_end;
            self.exit_cell = other.exit_cell;
        }
        self.observations += other.observations;
        if other.speed_pairs > 0 {
            if self.speed_pairs == 0 {
                self.min_speed = other.min_speed;
                self.max_speed = other.max_speed;
            } else {
                self.min_speed = self.min_speed.min(other.min_speed);
                self.max_speed = self.max_speed.max(other.max_speed);
            }
            self.speed_pairs += other.speed_pairs;
        }
    }

    /// Lifetime of the sketch in seconds (zero for a single observation).
    pub fn duration_secs(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Per-window accumulator state of one track: the sketch of the current
/// seal window plus the last observed point, which is *not* reset when the
/// window drains — the pair straddling a seal boundary is charged to the
/// later window, so the absorb-merge of all windows sees every
/// consecutive-observation pair exactly once.
#[derive(Debug, Clone, Default)]
struct TrackWindow {
    sketch: Option<TrackSketch>,
    last: Option<(f64, f64, f64)>,
}

/// Accumulates [`TrackSketch`]es for one stream's ingest pipeline,
/// windowed by segment seals.
///
/// [`observe`](Self::observe) is O(cells) per observation;
/// [`drain_window`](Self::drain_window) hands the current window's sketches
/// to the segment being sealed and starts a new window, carrying each
/// track's last point across the boundary. Because the carried point only
/// feeds speed pairs (charged to the later window) and every other field
/// merges commutatively, draining at arbitrary points never changes the
/// absorb-merged whole-life sketch.
#[derive(Debug, Clone)]
pub struct TrackSketcher {
    stream: StreamId,
    windows: HashMap<TrackId, TrackWindow>,
}

impl TrackSketcher {
    /// An empty accumulator for `stream`.
    pub fn new(stream: StreamId) -> Self {
        TrackSketcher {
            stream,
            windows: HashMap::new(),
        }
    }

    /// The stream this sketcher accumulates for.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Folds one observation of `track` at pixel position `(x, y)` into the
    /// current window. Observations of a track must arrive in increasing
    /// time order (which ingest guarantees).
    pub fn observe(&mut self, track: TrackId, secs: f64, x: f64, y: f64) {
        let window = self.windows.entry(track).or_default();
        let key = TrackKey::new(self.stream, track);
        match &mut window.sketch {
            Some(sketch) => sketch.observe(secs, x, y),
            None => window.sketch = Some(TrackSketch::first(key, secs, x, y)),
        }
        if let Some((last_secs, lx, ly)) = window.last {
            let dt = secs - last_secs;
            if dt > 0.0 {
                let dist = (x - lx).hypot(y - ly);
                window
                    .sketch
                    .as_mut()
                    .expect("sketch created above")
                    .add_speed(dist / dt);
            }
        }
        window.last = Some((secs, x, y));
    }

    /// The current window's sketches, sorted by key, resetting the window
    /// (but keeping each track's carried last point for boundary pairs).
    pub fn drain_window(&mut self) -> Vec<TrackSketch> {
        let mut out: Vec<TrackSketch> = self
            .windows
            .values_mut()
            .filter_map(|w| w.sketch.take())
            .collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// The current window's sketches without resetting anything — the hot
    /// tail's view, byte-identical to what [`drain_window`](Self::drain_window)
    /// would produce at this instant.
    pub fn snapshot_window(&self) -> Vec<TrackSketch> {
        let mut out: Vec<TrackSketch> = self
            .windows
            .values()
            .filter_map(|w| w.sketch.clone())
            .collect();
        out.sort_by_key(|s| s.key);
        out
    }

    /// Whether the current window holds no sketches.
    pub fn window_is_empty(&self) -> bool {
        self.windows.values().all(|w| w.sketch.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(track: u64) -> TrackKey {
        TrackKey::new(StreamId(0), TrackId(track))
    }

    #[test]
    fn cell_codes_roundtrip_and_clamp() {
        assert_eq!(cell_coords(cell_code(3, 7)), (3, 7));
        assert_eq!(cell_of(0.0, 0.0), cell_code(0, 0));
        assert_eq!(cell_of(79.9, 79.9), cell_code(0, 0));
        assert_eq!(cell_of(80.0, 160.0), cell_code(1, 2));
        // Negative coordinates clamp into the edge cell.
        assert_eq!(cell_of(-5.0, -5.0), cell_code(0, 0));
    }

    #[test]
    fn single_window_sketch_tracks_path_and_speed() {
        let mut sketcher = TrackSketcher::new(StreamId(0));
        // 100 px in 1 s, then 50 px in 1 s.
        sketcher.observe(TrackId(1), 0.0, 0.0, 0.0);
        sketcher.observe(TrackId(1), 1.0, 100.0, 0.0);
        sketcher.observe(TrackId(1), 2.0, 150.0, 0.0);
        let sketches = sketcher.snapshot_window();
        assert_eq!(sketches.len(), 1);
        let s = &sketches[0];
        assert_eq!(s.key, key(1));
        assert_eq!(s.observations, 3);
        assert_eq!(s.entry_cell, cell_code(0, 0));
        assert_eq!(s.exit_cell, cell_code(1, 0));
        assert_eq!(s.cells, vec![cell_code(0, 0), cell_code(1, 0)]);
        assert_eq!(s.t_start, 0.0);
        assert_eq!(s.t_end, 2.0);
        assert_eq!(s.speed_pairs, 2);
        assert_eq!(s.min_speed, 50.0);
        assert_eq!(s.max_speed, 100.0);
        assert_eq!(s.duration_secs(), 2.0);
    }

    #[test]
    fn single_observation_has_no_speed() {
        let mut sketcher = TrackSketcher::new(StreamId(0));
        sketcher.observe(TrackId(1), 5.0, 10.0, 10.0);
        let s = &sketcher.snapshot_window()[0];
        assert_eq!(s.speed_pairs, 0);
        assert_eq!(s.min_speed, 0.0);
        assert_eq!(s.duration_secs(), 0.0);
    }

    #[test]
    fn drains_are_invariant_under_window_boundaries() {
        // One continuous pass vs. draining after every observation: the
        // absorb-merged sketches must agree on every predicate-visible
        // field.
        let path: Vec<(f64, f64, f64)> = (0..20)
            .map(|i| (i as f64 * 0.5, i as f64 * 37.0, (i % 7) as f64 * 60.0))
            .collect();
        let mut whole = TrackSketcher::new(StreamId(2));
        let mut chopped = TrackSketcher::new(StreamId(2));
        let mut merged: Option<TrackSketch> = None;
        for (secs, x, y) in &path {
            whole.observe(TrackId(9), *secs, *x, *y);
            chopped.observe(TrackId(9), *secs, *x, *y);
            for part in chopped.drain_window() {
                match &mut merged {
                    Some(m) => m.absorb(&part),
                    None => merged = Some(part),
                }
            }
        }
        let reference = &whole.snapshot_window()[0];
        let merged = merged.unwrap();
        assert_eq!(merged.key, reference.key);
        assert_eq!(merged.cells, reference.cells);
        assert_eq!(merged.entry_cell, reference.entry_cell);
        assert_eq!(merged.exit_cell, reference.exit_cell);
        assert_eq!(merged.t_start, reference.t_start);
        assert_eq!(merged.t_end, reference.t_end);
        assert_eq!(merged.observations, reference.observations);
        assert_eq!(merged.speed_pairs, reference.speed_pairs);
        assert_eq!(merged.min_speed, reference.min_speed);
        assert_eq!(merged.max_speed, reference.max_speed);
    }

    #[test]
    fn absorb_is_commutative_on_predicate_fields() {
        let mut a = TrackSketch::first(key(3), 0.0, 10.0, 10.0);
        a.observe(1.0, 90.0, 10.0);
        a.add_speed(80.0);
        let mut b = TrackSketch::first(key(3), 2.0, 200.0, 200.0);
        b.add_speed(30.0);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab.cells, ba.cells);
        assert_eq!(ab.entry_cell, ba.entry_cell);
        assert_eq!(ab.exit_cell, ba.exit_cell);
        assert_eq!(ab.t_start, ba.t_start);
        assert_eq!(ab.t_end, ba.t_end);
        assert_eq!(ab.min_speed, ba.min_speed);
        assert_eq!(ab.max_speed, ba.max_speed);
        assert_eq!(ab.observations, ba.observations);
        assert_eq!(ab.speed_pairs, ba.speed_pairs);
        assert_eq!(ab.entry_cell, cell_code(0, 0));
        assert_eq!(ab.exit_cell, cell_code(2, 2));
    }

    #[test]
    #[should_panic(expected = "matching track keys")]
    fn absorb_rejects_mismatched_keys() {
        let mut a = TrackSketch::first(key(1), 0.0, 0.0, 0.0);
        let b = TrackSketch::first(key(2), 0.0, 0.0, 0.0);
        a.absorb(&b);
    }

    #[test]
    fn tracks_are_kept_separate() {
        let mut sketcher = TrackSketcher::new(StreamId(1));
        sketcher.observe(TrackId(1), 0.0, 0.0, 0.0);
        sketcher.observe(TrackId(2), 0.0, 500.0, 500.0);
        sketcher.observe(TrackId(1), 1.0, 40.0, 0.0);
        let sketches = sketcher.drain_window();
        assert_eq!(sketches.len(), 2);
        assert_eq!(sketches[0].key, TrackKey::new(StreamId(1), TrackId(1)));
        assert_eq!(sketches[0].observations, 2);
        assert_eq!(sketches[1].key, TrackKey::new(StreamId(1), TrackId(2)));
        assert_eq!(sketches[1].observations, 1);
        assert!(sketcher.window_is_empty());
        // A later observation of track 1 starts a fresh window but still
        // pairs with the carried point for speed.
        sketcher.observe(TrackId(1), 2.0, 80.0, 0.0);
        let next = sketcher.drain_window();
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].observations, 1);
        assert_eq!(next[0].speed_pairs, 1);
        assert_eq!(next[0].min_speed, 40.0);
    }
}
