//! The threshold-based single-pass incremental clusterer.

use serde::{Deserialize, Serialize};

/// Identifier of a cluster, unique within one clusterer instance.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClusterId(pub u64);

/// An item that was assigned to a cluster. The clusterer is generic over
/// what an item *is* (Focus stores object and frame identifiers); it only
/// needs an opaque 64-bit payload pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterMember {
    /// Primary identifier of the member (Focus: the object id).
    pub item: u64,
    /// Secondary identifier carried along (Focus: the frame id).
    pub tag: u64,
}

/// A cluster: its running centroid and its members. The first member is the
/// cluster's representative (the object whose features opened or currently
/// anchor the cluster); Focus classifies exactly that representative with
/// the ground-truth CNN at query time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Cluster identifier.
    pub id: ClusterId,
    /// Running mean of the members' feature vectors.
    pub centroid: Vec<f32>,
    /// Members in insertion order; the first member is the representative.
    pub members: Vec<ClusterMember>,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster is empty (never true for sealed clusters).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The representative member classified by the GT-CNN at query time.
    pub fn representative(&self) -> ClusterMember {
        self.members[0]
    }
}

/// Statistics describing a finished clustering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusteringStats {
    /// Objects added.
    pub objects: usize,
    /// Clusters produced (active + spilled).
    pub clusters: usize,
    /// Number of clusters spilled because the active set exceeded its cap.
    pub spilled: usize,
    /// Average members per cluster.
    pub mean_cluster_size: f64,
    /// Total number of centroid distance evaluations performed (the `O(M·n)`
    /// work term).
    pub distance_evaluations: u64,
}

/// The single-pass incremental clusterer.
///
/// Distances are Euclidean (L2), matching §4.2 of the paper. The clusterer
/// never re-assigns an object once placed, which is what keeps it single
/// pass.
#[derive(Debug, Clone)]
pub struct IncrementalClusterer {
    threshold: f32,
    max_active: usize,
    dim: Option<usize>,
    active: Vec<ClusterState>,
    sealed: Vec<Cluster>,
    next_id: u64,
    objects: usize,
    spilled: usize,
    distance_evaluations: u64,
}

/// How many recent additions protect a cluster from being spilled. A
/// cluster that absorbed an object within this window is still "hot" (the
/// object it tracks is probably still in view), so sealing it would split
/// what should be one cluster into many.
const SPILL_RECENCY_GRACE: u64 = 32;

#[derive(Debug, Clone)]
struct ClusterState {
    id: ClusterId,
    centroid: Vec<f32>,
    sum: Vec<f32>,
    members: Vec<ClusterMember>,
    /// Value of the clusterer's add counter when this cluster last absorbed
    /// an object.
    last_update: u64,
}

impl ClusterState {
    fn to_cluster(&self) -> Cluster {
        Cluster {
            id: self.id,
            centroid: self.centroid.clone(),
            members: self.members.clone(),
        }
    }
}

impl IncrementalClusterer {
    /// Creates a clusterer with distance threshold `threshold` and at most
    /// `max_active` concurrently open clusters.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is negative/NaN or `max_active` is zero.
    pub fn new(threshold: f32, max_active: usize) -> Self {
        assert!(
            threshold.is_finite() && threshold >= 0.0,
            "threshold must be a non-negative finite number"
        );
        assert!(max_active > 0, "max_active must be positive");
        Self {
            threshold,
            max_active,
            dim: None,
            active: Vec::new(),
            sealed: Vec::new(),
            next_id: 0,
            objects: 0,
            spilled: 0,
            distance_evaluations: 0,
        }
    }

    /// The distance threshold `T`.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The active-set cap `M`.
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// Number of objects added so far.
    pub fn objects_added(&self) -> usize {
        self.objects
    }

    /// Number of clusters currently active (not yet sealed).
    pub fn active_clusters(&self) -> usize {
        self.active.len()
    }

    fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Adds one object (identified by `item`/`tag`) with feature vector
    /// `features`; returns the cluster it was assigned to.
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty or its dimension differs from earlier
    /// objects.
    pub fn add(&mut self, item: u64, tag: u64, features: &[f32]) -> ClusterId {
        assert!(!features.is_empty(), "features must not be empty");
        match self.dim {
            None => self.dim = Some(features.len()),
            Some(d) => assert_eq!(d, features.len(), "feature dimension changed mid-stream"),
        }
        self.objects += 1;
        let member = ClusterMember { item, tag };
        let threshold_sq = self.threshold * self.threshold;
        let mut best: Option<(usize, f32)> = None;
        for (idx, cluster) in self.active.iter().enumerate() {
            self.distance_evaluations += 1;
            let d = Self::squared_distance(&cluster.centroid, features);
            if d <= threshold_sq && best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((idx, d));
            }
        }
        if let Some((idx, _)) = best {
            let cluster = &mut self.active[idx];
            for (s, f) in cluster.sum.iter_mut().zip(features.iter()) {
                *s += f;
            }
            cluster.members.push(member);
            cluster.last_update = self.objects as u64;
            let n = cluster.members.len() as f32;
            for (c, s) in cluster.centroid.iter_mut().zip(cluster.sum.iter()) {
                *c = s / n;
            }
            return cluster.id;
        }
        // No cluster close enough: open a new one.
        let id = ClusterId(self.next_id);
        self.next_id += 1;
        self.active.push(ClusterState {
            id,
            centroid: features.to_vec(),
            sum: features.to_vec(),
            members: vec![member],
            last_update: self.objects as u64,
        });
        if self.active.len() > self.max_active {
            self.spill_one();
        }
        id
    }

    /// Seals one active cluster, moving it to the output set. This is the
    /// paper's "keep the number of clusters at a constant M by removing the
    /// smallest ones and storing their data in the top-K index", with one
    /// refinement for small `M`: clusters that absorbed an object very
    /// recently are protected, because the smallest cluster is otherwise
    /// almost always the one that is *currently being formed* (evicting it
    /// would shatter ongoing tracks into singleton clusters). Among the
    /// non-recent clusters the smallest is sealed, oldest first on ties.
    fn spill_one(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let cutoff = (self.objects as u64).saturating_sub(SPILL_RECENCY_GRACE);
        let (idx, _) = self
            .active
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| {
                let recently_updated = c.last_update >= cutoff;
                (recently_updated, c.members.len(), c.last_update)
            })
            .expect("active set is non-empty");
        let state = self.active.swap_remove(idx);
        self.sealed.push(state.to_cluster());
        self.spilled += 1;
    }

    /// Finishes clustering, returning every cluster (sealed and active).
    pub fn finish(mut self) -> (Vec<Cluster>, ClusteringStats) {
        let mut clusters = std::mem::take(&mut self.sealed);
        clusters.extend(self.active.iter().map(ClusterState::to_cluster));
        clusters.sort_by_key(|c| c.id);
        let stats = ClusteringStats {
            objects: self.objects,
            clusters: clusters.len(),
            spilled: self.spilled,
            mean_cluster_size: if clusters.is_empty() {
                0.0
            } else {
                self.objects as f64 / clusters.len() as f64
            },
            distance_evaluations: self.distance_evaluations,
        };
        (clusters, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(values: &[f32]) -> Vec<f32> {
        values.to_vec()
    }

    #[test]
    fn first_object_opens_first_cluster() {
        let mut c = IncrementalClusterer::new(1.0, 16);
        let id = c.add(1, 100, &point(&[0.0, 0.0]));
        assert_eq!(id, ClusterId(0));
        let (clusters, stats) = c.finish();
        assert_eq!(clusters.len(), 1);
        assert_eq!(stats.objects, 1);
        assert_eq!(
            clusters[0].representative(),
            ClusterMember { item: 1, tag: 100 }
        );
    }

    #[test]
    fn close_objects_join_far_objects_split() {
        let mut c = IncrementalClusterer::new(1.0, 16);
        let a = c.add(1, 0, &point(&[0.0, 0.0]));
        let b = c.add(2, 0, &point(&[0.1, 0.1]));
        let d = c.add(3, 0, &point(&[10.0, 10.0]));
        assert_eq!(a, b);
        assert_ne!(a, d);
        let (clusters, stats) = c.finish();
        assert_eq!(clusters.len(), 2);
        assert_eq!(stats.clusters, 2);
        assert!((stats.mean_cluster_size - 1.5).abs() < 1e-9);
    }

    #[test]
    fn centroid_is_running_mean() {
        let mut c = IncrementalClusterer::new(10.0, 16);
        c.add(1, 0, &point(&[0.0, 0.0]));
        c.add(2, 0, &point(&[2.0, 0.0]));
        c.add(3, 0, &point(&[4.0, 0.0]));
        let (clusters, _) = c.finish();
        assert_eq!(clusters.len(), 1);
        assert!((clusters[0].centroid[0] - 2.0).abs() < 1e-6);
        assert!((clusters[0].centroid[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn zero_threshold_separates_distinct_points() {
        let mut c = IncrementalClusterer::new(0.0, 100);
        c.add(1, 0, &point(&[0.0]));
        c.add(2, 0, &point(&[0.0]));
        c.add(3, 0, &point(&[1.0]));
        let (clusters, _) = c.finish();
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn active_set_is_capped_and_spills_smallest() {
        let mut c = IncrementalClusterer::new(0.1, 2);
        // Three mutually distant clusters; the cap is 2, so one gets sealed.
        for i in 0..5 {
            c.add(i, 0, &point(&[0.0, 0.0]));
        }
        c.add(100, 0, &point(&[100.0, 0.0]));
        assert_eq!(c.active_clusters(), 2);
        c.add(200, 0, &point(&[200.0, 0.0]));
        assert_eq!(c.active_clusters(), 2, "cap must hold after spill");
        let (clusters, stats) = c.finish();
        assert_eq!(clusters.len(), 3);
        assert_eq!(stats.spilled, 1);
        // Every object is in exactly one cluster.
        let total: usize = clusters.iter().map(|cl| cl.len()).sum();
        assert_eq!(total, stats.objects);
    }

    #[test]
    fn spilled_cluster_does_not_absorb_new_members() {
        let mut c = IncrementalClusterer::new(0.5, 1);
        c.add(1, 0, &point(&[0.0]));
        c.add(2, 0, &point(&[50.0])); // spills the first cluster
        c.add(3, 0, &point(&[0.0])); // first cluster is sealed; opens a new one
        let (clusters, _) = c.finish();
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn stats_count_distance_evaluations_linear_in_active_set() {
        let mut c = IncrementalClusterer::new(0.1, 4);
        for i in 0..100u64 {
            c.add(i, 0, &point(&[(i % 4) as f32 * 100.0, 0.0]));
        }
        let (_, stats) = c.finish();
        // Each add scans at most `max_active` centroids.
        assert!(stats.distance_evaluations <= 100 * 4);
        assert_eq!(stats.objects, 100);
    }

    #[test]
    #[should_panic(expected = "feature dimension changed")]
    fn dimension_mismatch_panics() {
        let mut c = IncrementalClusterer::new(1.0, 4);
        c.add(1, 0, &point(&[0.0, 0.0]));
        c.add(2, 0, &point(&[0.0]));
    }

    #[test]
    #[should_panic(expected = "features must not be empty")]
    fn empty_features_panic() {
        let mut c = IncrementalClusterer::new(1.0, 4);
        c.add(1, 0, &[]);
    }

    #[test]
    #[should_panic(expected = "max_active must be positive")]
    fn zero_cap_panics() {
        let _ = IncrementalClusterer::new(1.0, 0);
    }

    #[test]
    #[should_panic(expected = "threshold must be a non-negative finite number")]
    fn negative_threshold_panics() {
        let _ = IncrementalClusterer::new(-1.0, 4);
    }

    #[test]
    fn finish_on_empty_clusterer() {
        let (clusters, stats) = IncrementalClusterer::new(1.0, 4).finish();
        assert!(clusters.is_empty());
        assert_eq!(stats.objects, 0);
        assert_eq!(stats.mean_cluster_size, 0.0);
    }

    #[test]
    fn object_joins_nearest_qualifying_cluster() {
        let mut c = IncrementalClusterer::new(2.0, 16);
        let a = c.add(1, 0, &point(&[0.0]));
        let b = c.add(2, 0, &point(&[3.0]));
        assert_ne!(a, b, "3.0 exceeds the threshold, so a new cluster opens");
        // 1.9 is within the threshold of both centroids (0 and 3) but closer
        // to the second one.
        let joined = c.add(3, 0, &point(&[1.9]));
        assert_eq!(joined, b);
        assert_ne!(joined, a);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_points() -> impl Strategy<Value = Vec<Vec<f32>>> {
        prop::collection::vec(prop::collection::vec(-100.0f32..100.0, 4), 1..200)
    }

    proptest! {
        /// Every object ends up in exactly one cluster, regardless of the
        /// threshold or cap.
        #[test]
        fn every_object_assigned_exactly_once(
            points in arbitrary_points(),
            threshold in 0.0f32..50.0,
            cap in 1usize..32,
        ) {
            let mut c = IncrementalClusterer::new(threshold, cap);
            for (i, p) in points.iter().enumerate() {
                c.add(i as u64, 0, p);
            }
            let (clusters, stats) = c.finish();
            let mut seen = std::collections::HashSet::new();
            for cluster in &clusters {
                prop_assert!(!cluster.is_empty());
                for m in &cluster.members {
                    prop_assert!(seen.insert(m.item), "object assigned twice");
                }
            }
            prop_assert_eq!(seen.len(), points.len());
            prop_assert_eq!(stats.objects, points.len());
            prop_assert_eq!(stats.clusters, clusters.len());
        }

        /// The number of active clusters never exceeds the cap, and total
        /// distance evaluations stay linear in (objects × cap).
        #[test]
        fn active_cap_and_linear_work(
            points in arbitrary_points(),
            cap in 1usize..16,
        ) {
            let mut c = IncrementalClusterer::new(1.0, cap);
            for (i, p) in points.iter().enumerate() {
                c.add(i as u64, 0, p);
                prop_assert!(c.active_clusters() <= cap);
            }
            let n = points.len() as u64;
            let (_, stats) = c.finish();
            prop_assert!(stats.distance_evaluations <= n * cap as u64);
        }

        /// Cluster centroids lie within the bounding box of the data.
        #[test]
        fn centroids_inside_data_hull(
            points in arbitrary_points(),
            threshold in 0.1f32..20.0,
        ) {
            let mut c = IncrementalClusterer::new(threshold, 64);
            for (i, p) in points.iter().enumerate() {
                c.add(i as u64, 0, p);
            }
            let (clusters, _) = c.finish();
            for d in 0..4 {
                let lo = points.iter().map(|p| p[d]).fold(f32::INFINITY, f32::min);
                let hi = points.iter().map(|p| p[d]).fold(f32::NEG_INFINITY, f32::max);
                for cluster in &clusters {
                    prop_assert!(cluster.centroid[d] >= lo - 1e-3);
                    prop_assert!(cluster.centroid[d] <= hi + 1e-3);
                }
            }
        }

        /// With an infinite threshold everything lands in one cluster; with a
        /// zero threshold distinct points never merge.
        #[test]
        fn threshold_extremes(points in arbitrary_points()) {
            let mut all = IncrementalClusterer::new(f32::MAX.sqrt() / 4.0, 8);
            for (i, p) in points.iter().enumerate() {
                all.add(i as u64, 0, p);
            }
            let (clusters, _) = all.finish();
            prop_assert_eq!(clusters.len(), 1);

            let mut none = IncrementalClusterer::new(0.0, usize::MAX >> 1);
            for (i, p) in points.iter().enumerate() {
                none.add(i as u64, 0, p);
            }
            let (clusters, _) = none.finish();
            let distinct: std::collections::HashSet<Vec<u32>> = points
                .iter()
                .map(|p| p.iter().map(|f| f.to_bits()).collect())
                .collect();
            prop_assert_eq!(clusters.len(), distinct.len());
        }
    }
}
