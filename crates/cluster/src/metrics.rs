//! Cluster quality metrics.
//!
//! Clustering can reduce both precision and recall (§4.2 of the paper): if a
//! cluster mixes classes, the centroid's label is applied to objects of a
//! different class (hurting precision) and objects of the queried class can
//! hide in clusters whose centroid is labelled otherwise (hurting recall).
//! These helpers quantify that impurity; Focus's parameter selection uses
//! them indirectly by measuring end-to-end precision/recall on a sample, and
//! the test-suite uses them directly to validate clustering behaviour.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::incremental::Cluster;

/// Purity of one cluster given a labelling of its members: the fraction of
/// members that share the cluster's majority label.
///
/// `label_of` maps a member's `item` identifier to its label. Members with
/// no label are ignored; an unlabelled or empty cluster has purity 1.0 by
/// convention (there is nothing to get wrong).
pub fn purity<L, F>(cluster: &Cluster, mut label_of: F) -> f64
where
    L: Eq + std::hash::Hash,
    F: FnMut(u64) -> Option<L>,
{
    let mut counts: HashMap<L, usize> = HashMap::new();
    let mut labelled = 0usize;
    for member in &cluster.members {
        if let Some(label) = label_of(member.item) {
            *counts.entry(label).or_insert(0) += 1;
            labelled += 1;
        }
    }
    if labelled == 0 {
        return 1.0;
    }
    let majority = counts.values().copied().max().unwrap_or(0);
    majority as f64 / labelled as f64
}

/// Aggregate quality report over a set of clusters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterQualityReport {
    /// Number of clusters examined.
    pub clusters: usize,
    /// Number of labelled members across all clusters.
    pub members: usize,
    /// Mean purity, weighted by cluster size.
    pub weighted_purity: f64,
    /// Fraction of clusters that are perfectly pure.
    pub pure_cluster_fraction: f64,
    /// Size of the largest cluster.
    pub largest_cluster: usize,
}

impl ClusterQualityReport {
    /// Computes the report for `clusters` under the labelling `label_of`.
    pub fn compute<L, F>(clusters: &[Cluster], mut label_of: F) -> Self
    where
        L: Eq + std::hash::Hash,
        F: FnMut(u64) -> Option<L>,
    {
        if clusters.is_empty() {
            return Self::default();
        }
        let mut weighted = 0.0;
        let mut members = 0usize;
        let mut pure = 0usize;
        let mut largest = 0usize;
        for cluster in clusters {
            let p = purity(cluster, &mut label_of);
            weighted += p * cluster.len() as f64;
            members += cluster.len();
            largest = largest.max(cluster.len());
            if p >= 1.0 - 1e-12 {
                pure += 1;
            }
        }
        Self {
            clusters: clusters.len(),
            members,
            weighted_purity: if members == 0 {
                1.0
            } else {
                weighted / members as f64
            },
            pure_cluster_fraction: pure as f64 / clusters.len() as f64,
            largest_cluster: largest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{ClusterId, ClusterMember};

    fn cluster(id: u64, items: &[u64]) -> Cluster {
        Cluster {
            id: ClusterId(id),
            centroid: vec![0.0],
            members: items
                .iter()
                .map(|&item| ClusterMember { item, tag: 0 })
                .collect(),
        }
    }

    #[test]
    fn purity_of_uniform_cluster_is_one() {
        let c = cluster(0, &[1, 2, 3]);
        assert_eq!(purity(&c, |_| Some("car")), 1.0);
    }

    #[test]
    fn purity_of_mixed_cluster() {
        let c = cluster(0, &[1, 2, 3, 4]);
        // Items 1-3 are cars, item 4 is a bus.
        let p = purity(&c, |item| Some(if item <= 3 { "car" } else { "bus" }));
        assert!((p - 0.75).abs() < 1e-9);
    }

    #[test]
    fn unlabelled_members_are_ignored() {
        let c = cluster(0, &[1, 2, 3, 4]);
        let p = purity(&c, |item| if item <= 2 { Some("car") } else { None });
        assert_eq!(p, 1.0);
        let p_none = purity(&c, |_| Option::<&str>::None);
        assert_eq!(p_none, 1.0);
    }

    #[test]
    fn report_aggregates_weighted_purity() {
        let clusters = vec![cluster(0, &[1, 2, 3, 4]), cluster(1, &[10, 11])];
        // First cluster: 3 cars, 1 bus (purity 0.75). Second: pure (1.0).
        let report = ClusterQualityReport::compute(&clusters, |item| {
            Some(if item == 4 { "bus" } else { "car" })
        });
        assert_eq!(report.clusters, 2);
        assert_eq!(report.members, 6);
        assert!((report.weighted_purity - (0.75 * 4.0 + 1.0 * 2.0) / 6.0).abs() < 1e-9);
        assert!((report.pure_cluster_fraction - 0.5).abs() < 1e-9);
        assert_eq!(report.largest_cluster, 4);
    }

    #[test]
    fn empty_report() {
        let report = ClusterQualityReport::compute::<&str, _>(&[], |_| None);
        assert_eq!(report.clusters, 0);
        assert_eq!(report.members, 0);
    }
}
