//! Single-pass incremental clustering substrate (§4.2 of the paper).
//!
//! Focus clusters objects at ingest time by the feature vectors produced by
//! the cheap ingest CNN, so that at query time only one object per cluster —
//! the centroid — has to be classified by the expensive ground-truth CNN.
//!
//! The paper's requirements for the clustering algorithm are:
//!
//! 1. **Single pass** — video arrives continuously and volumes are large, so
//!    quadratic algorithms are out.
//! 2. **No fixed cluster count** — the number of clusters must adapt to the
//!    data; outliers simply open new clusters.
//! 3. **Bounded state** — the active set is capped at `M` clusters; when the
//!    cap is exceeded the smallest clusters are sealed (spilled) to the
//!    index, keeping the per-object cost `O(M)` and the total cost `O(M·n)`.
//!
//! The algorithm (following the incremental/leader clustering literature the
//! paper cites): the first object opens the first cluster; each subsequent
//! object joins the nearest active cluster if its centroid is within the
//! distance threshold `T`, otherwise it opens a new cluster.
//!
//! This crate is deliberately independent of the CNN substrate — it clusters
//! plain `&[f32]` points — so it can be reused and property-tested in
//! isolation.

pub mod incremental;
pub mod metrics;

pub use incremental::{Cluster, ClusterId, ClusterMember, ClusteringStats, IncrementalClusterer};
pub use metrics::{purity, ClusterQualityReport};
