//! Criterion benchmark for the fleet's scatter-gather query path at 1, 2
//! and 4 nodes, plus the simulated failover-to-first-answer time.
//!
//! Besides the usual bench output this writes `BENCH_cluster.json` to the
//! workspace root: per node count, the mean scatter width of the standard
//! request mix, the simulated bytes over the wire per query, and the
//! wall-clock queries/sec; for the multi-node fleets also the virtual-clock
//! seconds from a node loss to the first gathered answer. All transport
//! accounting runs through `NetMeter`/`NetCostModel` on a virtual clock, so
//! everything except `queries_per_sec` is exact and machine-independent.
//! CI's bench-smoke job guards the file with the direction-aware
//! `bench_guard`: scatter width, wire bytes and failover time must not
//! rise, queries/sec must not fall.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_bench::bench_workload_secs;
use focus_cnn::GroundTruthCnn;
use focus_core::fleet::{FleetConfig, FleetCoordinator};
use focus_core::service::ServiceConfig;
use focus_core::{IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig};
use focus_index::QueryFilter;
use focus_runtime::{Clock, GpuClusterSpec, NetCostModel, VirtualClock};
use focus_video::profile::profile_by_name;
use focus_video::{Frame, VideoDataset};

/// Serve waves averaged for the wall-clock queries/sec figure.
const QUERY_WAVES: usize = 12;

fn fleet_config(nodes: usize) -> FleetConfig {
    FleetConfig {
        nodes,
        service: ServiceConfig {
            worker: StreamWorkerConfig {
                params: IngestParams {
                    k: 10,
                    ..IngestParams::default()
                },
                bootstrap_secs: 1e9,
                retrain_interval_secs: 1e9,
                gt_label_fraction: 0.0,
                ..StreamWorkerConfig::default()
            },
            seal: SealPolicy::every_secs(6.0),
            gpus: GpuClusterSpec::new(4),
            ..ServiceConfig::default()
        },
        net: NetCostModel::default(),
    }
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne", "cnn"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn interleave(datasets: &[VideoDataset], chunk: usize) -> Vec<Frame> {
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames = Vec::new();
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(ds.frames.len());
            if *cursor < end {
                frames.extend(ds.frames[*cursor..end].iter().cloned());
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            return frames;
        }
    }
}

fn request_mix(datasets: &[VideoDataset], secs: f64) -> Vec<QueryRequest> {
    let classes = datasets[0].dominant_classes(2);
    let second = classes.get(1).copied().unwrap_or(classes[0]);
    vec![
        QueryRequest::new(classes[0]),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::any().with_time_range(0.0, secs / 3.0)),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::for_stream(datasets[0].profile.stream_id)),
        QueryRequest::new(second),
    ]
}

fn build_fleet(
    nodes: usize,
    datasets: &[VideoDataset],
    frames: &[Frame],
) -> (FleetCoordinator, VirtualClock, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("focus_bench_fleet_{nodes}"));
    let _ = std::fs::remove_dir_all(&dir);
    let clock = VirtualClock::new();
    let mut fleet =
        FleetCoordinator::create(&dir, fleet_config(nodes), GroundTruthCnn::resnet152())
            .unwrap()
            .with_clock(clock.clone());
    for ds in datasets {
        fleet
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    fleet.advance(frames).unwrap();
    (fleet, clock, dir)
}

struct NodeRun {
    scatter_width: f64,
    wire_bytes_per_query: f64,
    queries_per_sec: f64,
    /// Virtual-clock seconds from node loss to the first gathered answer
    /// (absent for the single-node fleet, which has no survivor to fail
    /// over to).
    failover_to_first_answer_secs: Option<f64>,
}

/// Measures one node count: scatter accounting on a fresh meter, wall-clock
/// serve throughput, and (multi-node) the kill→failover→first-answer time
/// on the virtual clock.
fn measure(nodes: usize, datasets: &[VideoDataset], frames: &[Frame], secs: f64) -> NodeRun {
    let requests = request_mix(datasets, secs);
    let (mut fleet, clock, dir) = build_fleet(nodes, datasets, frames);

    // Warm the verdict cache so the measured waves are steady-state.
    fleet.serve(&requests).unwrap();
    let meter = fleet.net_meter();
    meter.reset();
    let wall = std::time::Instant::now();
    for _ in 0..QUERY_WAVES {
        // One request per scatter: a batch would take the union of the
        // mix's shard sets and hide the per-request pruning the scatter
        // width metric guards.
        for request in &requests {
            fleet.serve(std::slice::from_ref(request)).unwrap();
        }
    }
    let elapsed = wall.elapsed().as_secs_f64().max(1e-9);
    let net = meter.snapshot();
    let queries = (QUERY_WAVES * requests.len()) as f64;

    let failover_to_first_answer_secs = (nodes > 1).then(|| {
        let victim = fleet.manifest().assignments[0].node;
        let from = clock.now_secs();
        fleet.kill_node(victim);
        fleet.failover().unwrap();
        fleet.serve(&requests).unwrap();
        clock.now_secs() - from
    });

    std::fs::remove_dir_all(&dir).ok();
    NodeRun {
        scatter_width: net.scatter_width(),
        wire_bytes_per_query: net.bytes_total() as f64 / queries,
        queries_per_sec: queries / elapsed,
        failover_to_first_answer_secs,
    }
}

fn bench_fleet_scatter(c: &mut Criterion) {
    let secs = bench_workload_secs(40.0);
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);

    let mut group = c.benchmark_group("fleet_scatter");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));
    for nodes in [1usize, 2, 4] {
        let (mut fleet, _clock, dir) = build_fleet(nodes, &datasets, &frames);
        fleet.serve(&requests).unwrap();
        group.bench_function(format!("serve_{nodes}_nodes"), |b| {
            b.iter(|| fleet.serve(&requests).unwrap().len())
        });
        std::fs::remove_dir_all(&dir).ok();
    }
    group.finish();

    write_trajectory(&datasets, &frames, secs);
}

/// Runs each node count once and writes `BENCH_cluster.json` for future
/// PRs to compare against.
fn write_trajectory(datasets: &[VideoDataset], frames: &[Frame], secs: f64) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"ingest_secs\": {secs},\n  \"nodes\": {{\n"));
    for (i, nodes) in [1usize, 2, 4].iter().enumerate() {
        let run = measure(*nodes, datasets, frames, secs);
        // The fleet's distributed contract, pinned here so the bench
        // itself fails loudly if scatter or failover break.
        assert!(run.scatter_width <= datasets.len() as f64);
        assert!(run.wire_bytes_per_query > 0.0);
        let failover = run
            .failover_to_first_answer_secs
            .map(|s| {
                assert!(s > 0.0, "failover must cost simulated time");
                format!(", \"failover_to_first_answer_secs\": {s:.6}")
            })
            .unwrap_or_default();
        json.push_str(&format!(
            "    \"n{nodes}\": {{ \"scatter_width\": {:.4}, \
             \"wire_bytes_per_query\": {:.1}, \"queries_per_sec\": {:.2}{failover} }}{}\n",
            run.scatter_width,
            run.wire_bytes_per_query,
            run.queries_per_sec,
            if i < 2 { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cluster.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fleet_scatter);
criterion_main!(benches);
