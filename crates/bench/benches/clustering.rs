//! Criterion micro-benchmark: throughput of the single-pass incremental
//! clusterer on realistic feature vectors (the ingest-time hot loop of §4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_cluster::IncrementalClusterer;
use focus_cnn::{CheapCnn, Classifier};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn feature_set(objects: usize) -> Vec<Vec<f32>> {
    let dataset = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 240.0);
    let model = CheapCnn::cheap_cnn_1();
    dataset
        .objects()
        .take(objects)
        .map(|o| model.extract_features(o).0)
        .collect()
}

fn bench_clustering(c: &mut Criterion) {
    let features = feature_set(4000);
    let mut group = c.benchmark_group("incremental_clustering");
    for &max_active in &[64usize, 256, 512] {
        group.throughput(Throughput::Elements(features.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("objects_4000", max_active),
            &max_active,
            |b, &max_active| {
                b.iter(|| {
                    let mut clusterer = IncrementalClusterer::new(1.5, max_active);
                    for (i, f) in features.iter().enumerate() {
                        clusterer.add(i as u64, 0, f);
                    }
                    clusterer.finish().1.clusters
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
