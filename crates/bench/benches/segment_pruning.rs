//! Criterion micro-benchmark: time-filtered query latency over the durable
//! segmented store vs the monolithic in-memory index, cold (fresh store,
//! empty LRU) vs warm (decoded segments cached), and cold-binary vs
//! cold-JSON (the same workload sealed in the legacy whole-file format).
//!
//! Besides the usual bench output this writes `BENCH_segments.json` to the
//! workspace root with queries/sec per mode, segment-pruning and
//! block-read statistics and the modelled storage latency of the cold
//! path, so the repository accumulates a storage-path perf trajectory
//! across changes.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_cnn::{GroundTruthCnn, ModelSpec};
use focus_core::segment_ingest::{SealPolicy, SegmentedIngest, SegmentedIngestOutput};
use focus_core::{IngestCnn, IngestParams, QueryRequest, QueryServer, SegmentedCorpus};
use focus_index::{QueryFilter, SegmentFormat, SegmentStore};
use focus_runtime::{GpuClusterSpec, GpuMeter, IoMeter, SegmentLoadCost};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

/// Seconds of stream per segment; the workload is sealed into
/// `duration / SEGMENT_SECS` segments per stream.
const SEGMENT_SECS: f64 = 20.0;

fn workload() -> Vec<VideoDataset> {
    let secs = focus_bench::bench_workload_secs(240.0);
    ["auburn_c", "lausanne"]
        .iter()
        .map(|name| VideoDataset::generate(profile_by_name(name).unwrap(), secs))
        .collect()
}

fn build_store(
    datasets: &[VideoDataset],
    name: &str,
    format: SegmentFormat,
) -> (SegmentedIngestOutput, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SegmentStore::create(&dir).unwrap().with_seal_format(format);
    let output = SegmentedIngest::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
        SealPolicy::every_secs(SEGMENT_SECS),
        2,
    )
    .ingest_to_store(datasets, &mut store, &GpuMeter::new())
    .unwrap();
    drop(store);
    (output, dir)
}

/// Time-restricted request mix: the dominant classes, each over a few
/// narrow windows of the timeline — the query shape segment pruning exists
/// for.
fn requests(datasets: &[VideoDataset]) -> Vec<QueryRequest> {
    let duration = datasets[0].frames.len() as f64 / datasets[0].profile.fps as f64;
    let classes = datasets[0].dominant_classes(3);
    let mut requests = Vec::new();
    for (i, class) in classes.iter().enumerate() {
        for w in 0..2 {
            let start = ((i * 2 + w) as f64 * SEGMENT_SECS) % duration.max(SEGMENT_SECS);
            let end = (start + SEGMENT_SECS).min(duration);
            requests.push(
                QueryRequest::new(*class)
                    .with_filter(QueryFilter::any().with_time_range(start, end)),
            );
        }
    }
    requests
}

fn server() -> QueryServer {
    QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4))
}

fn bench_segment_pruning(c: &mut Criterion) {
    let datasets = workload();
    let (output, dir) = build_store(
        &datasets,
        "focus_bench_segment_pruning",
        SegmentFormat::Binary,
    );
    // The same workload sealed as whole-file JSON: the migration/debug
    // format the binary path is measured against.
    let (json_output, json_dir) = build_store(
        &datasets,
        "focus_bench_segment_pruning_json",
        SegmentFormat::Json,
    );
    let reqs = requests(&datasets);
    let mut group = c.benchmark_group("segment_pruning");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));

    group.bench_function(BenchmarkId::new("time_filtered", "monolithic"), |b| {
        b.iter(|| {
            server()
                .serve(&output.combined, &reqs, &GpuMeter::new())
                .iter()
                .map(|o| o.frames.len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::new("time_filtered", "segmented_cold"), |b| {
        b.iter(|| {
            // A fresh open per iteration: empty LRU, every load from disk.
            let (store, _) = SegmentStore::open(&dir).unwrap();
            let corpus = SegmentedCorpus::from_output(store, &output);
            server()
                .serve_segmented(&corpus, &reqs, &GpuMeter::new(), &IoMeter::new())
                .unwrap()
                .iter()
                .map(|o| o.frames.len())
                .sum::<usize>()
        })
    });
    group.bench_function(
        BenchmarkId::new("time_filtered", "segmented_cold_json"),
        |b| {
            b.iter(|| {
                let (store, _) = SegmentStore::open(&json_dir).unwrap();
                let corpus = SegmentedCorpus::from_output(store, &json_output);
                server()
                    .serve_segmented(&corpus, &reqs, &GpuMeter::new(), &IoMeter::new())
                    .unwrap()
                    .iter()
                    .map(|o| o.frames.len())
                    .sum::<usize>()
            })
        },
    );
    group.bench_function(BenchmarkId::new("time_filtered", "segmented_warm"), |b| {
        let (store, _) = SegmentStore::open(&dir).unwrap();
        let corpus = SegmentedCorpus::from_output(store, &output);
        // Prime the LRU once; iterations then serve decoded segments.
        server()
            .serve_segmented(&corpus, &reqs, &GpuMeter::new(), &IoMeter::new())
            .unwrap();
        b.iter(|| {
            server()
                .serve_segmented(&corpus, &reqs, &GpuMeter::new(), &IoMeter::new())
                .unwrap()
                .iter()
                .map(|o| o.frames.len())
                .sum::<usize>()
        })
    });
    group.finish();

    write_trajectory(&output, &dir, &json_output, &json_dir, &reqs);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&json_dir).ok();
}

/// Measures the four modes directly and writes `BENCH_segments.json` for
/// future PRs to compare against.
fn write_trajectory(
    output: &SegmentedIngestOutput,
    dir: &std::path::Path,
    json_output: &SegmentedIngestOutput,
    json_dir: &std::path::Path,
    reqs: &[QueryRequest],
) {
    let time_fn = |f: &mut dyn FnMut() -> usize| {
        let runs = 3;
        let start = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(f());
        }
        start.elapsed().as_secs_f64() / runs as f64
    };

    // Every timed run consumes a prebuilt server: constructing a server
    // spawns its worker pool, which would otherwise dominate small (smoke)
    // workloads and make rates incomparable across workload sizes.
    let mut servers: Vec<QueryServer> = (0..12).map(|_| server()).collect();

    let mut mono_servers: Vec<QueryServer> = servers.drain(..3).collect();
    let monolithic_secs = time_fn(&mut || {
        let srv = mono_servers.pop().expect("prebuilt server");
        srv.serve(&output.combined, reqs, &GpuMeter::new())
            .iter()
            .map(|o| o.frames.len())
            .sum()
    });

    let cold_io = IoMeter::new();
    let mut cold_servers: Vec<QueryServer> = servers.drain(..3).collect();
    let cold_secs = time_fn(&mut || {
        let (store, _) = SegmentStore::open(dir).unwrap();
        let corpus = SegmentedCorpus::from_output(store, output);
        let srv = cold_servers.pop().expect("prebuilt server");
        srv.serve_segmented(&corpus, reqs, &GpuMeter::new(), &cold_io)
            .unwrap()
            .iter()
            .map(|o| o.frames.len())
            .sum()
    });

    let cold_json_io = IoMeter::new();
    let mut cold_json_servers: Vec<QueryServer> = servers.drain(..3).collect();
    let cold_json_secs = time_fn(&mut || {
        let (store, _) = SegmentStore::open(json_dir).unwrap();
        let corpus = SegmentedCorpus::from_output(store, json_output);
        let srv = cold_json_servers.pop().expect("prebuilt server");
        srv.serve_segmented(&corpus, reqs, &GpuMeter::new(), &cold_json_io)
            .unwrap()
            .iter()
            .map(|o| o.frames.len())
            .sum()
    });

    let (store, _) = SegmentStore::open(dir).unwrap();
    let corpus = SegmentedCorpus::from_output(store, output);
    let warm_io = IoMeter::new();
    server()
        .serve_segmented(&corpus, reqs, &GpuMeter::new(), &warm_io)
        .unwrap();
    warm_io.reset();
    let mut warm_servers: Vec<QueryServer> = servers;
    let warm_secs = time_fn(&mut || {
        let srv = warm_servers.pop().expect("prebuilt server");
        srv.serve_segmented(&corpus, reqs, &GpuMeter::new(), &warm_io)
            .unwrap()
            .iter()
            .map(|o| o.frames.len())
            .sum()
    });

    // Pruning statistics from one representative pass (3 timed runs above).
    let runs = 3.0;
    let cold = cold_io.snapshot();
    let cold_json = cold_json_io.snapshot();
    let warm = warm_io.snapshot();
    let segments_total = corpus.store().len();
    let opened_per_query_cold = cold.segments_opened() as f64 / (runs * reqs.len() as f64);
    let blocks_per_query_cold = cold.block_loads as f64 / (runs * reqs.len() as f64);
    let model = SegmentLoadCost::default();

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"queries_per_wave\": {},\n", reqs.len()));
    json.push_str(&format!("  \"segments_total\": {segments_total},\n"));
    json.push_str(&format!(
        "  \"clusters_total\": {},\n",
        output.combined.index.len()
    ));
    json.push_str("  \"runs\": {\n");
    let entries = [
        ("monolithic", monolithic_secs),
        ("segmented_cold", cold_secs),
        ("segmented_cold_json", cold_json_secs),
        ("segmented_warm", warm_secs),
    ];
    for (i, (name, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"secs\": {secs:.6}, \"queries_per_sec\": {:.1} }}{comma}\n",
            reqs.len() as f64 / secs
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"pruning\": {\n");
    json.push_str(&format!(
        "    \"segments_opened_per_query_cold\": {opened_per_query_cold:.2},\n"
    ));
    json.push_str(&format!(
        "    \"blocks_read_per_query_cold\": {blocks_per_query_cold:.2},\n"
    ));
    json.push_str(&format!(
        "    \"cold_loads\": {}, \"cold_bytes_read\": {},\n",
        cold.segment_loads, cold.bytes_read
    ));
    json.push_str(&format!(
        "    \"cold_json_bytes_read\": {},\n",
        cold_json.bytes_read
    ));
    json.push_str(&format!(
        "    \"warm_cache_hit_rate\": {:.4},\n",
        warm.hit_rate()
    ));
    json.push_str(&format!(
        "    \"warm_block_hit_rate\": {:.4},\n",
        warm.block_hit_rate()
    ));
    json.push_str(&format!(
        "    \"modelled_cold_storage_secs\": {:.6}\n",
        model.stats_secs(&cold) / runs
    ));
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_segments.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_segment_pruning);
criterion_main!(benches);
