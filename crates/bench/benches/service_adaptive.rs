//! Criterion benchmark for the adaptive live service: a static and an
//! adaptive [`FocusService`] run the same drift-injected workload (a
//! traffic camera whose class mix shifts to a news palette mid-stream),
//! interleaving ingest ticks with query waves.
//!
//! Besides the usual bench output this writes `BENCH_adaptive.json` to the
//! workspace root: wall-clock ingest/serve rates for both runs, the
//! *deterministic* post-drift worst-class accuracy of each (the adaptive
//! run's whole point), the verdict-cache hit rate, segment opens per query
//! and the adaptation GPU overhead. CI's bench-smoke job guards the file
//! with the direction-aware `bench_guard` — accuracy and hit rates must
//! not fall, opens-per-query must not rise.
//!
//! Unlike the other benches this one runs the **same workload under
//! `FOCUS_BENCH_SMOKE`**: its accuracy metrics derive from the drift
//! timeline (bootstrap → specialize → drift → detect → re-select), and
//! halving the recording would change them; the workload is sized small
//! enough to smoke-test as-is.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_cnn::specialize::SpecializationLevel;
use focus_cnn::{Classifier, GroundTruthCnn};
use focus_core::adapt::AdaptationConfig;
use focus_core::service::{FocusService, ServiceConfig};
use focus_core::{
    AccuracyTarget, GroundTruthLabels, IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig,
    TradeoffPolicy,
};
use focus_index::QueryFilter;
use focus_video::profile::{profile_by_name, StreamDomain};
use focus_video::{Frame, VideoDataset};

/// Seconds of pre-drift stream.
const PRE_SECS: f64 = 120.0;
/// Seconds of post-drift stream.
const POST_SECS: f64 = 120.0;
/// Seconds of stream per advance tick (one query wave per tick).
const TICK_SECS: f64 = 5.0;
/// Post-drift accuracy is judged from here (detection + re-selection
/// headroom past the drift at `PRE_SECS`).
const EVAL_START_SECS: f64 = 160.0;
/// Worst-class accuracy horizon (matches the sweep's dominant-classes).
const EVAL_CLASSES: usize = 3;

fn workload() -> VideoDataset {
    let profile = profile_by_name("auburn_c").unwrap();
    let base = VideoDataset::generate(profile.clone(), PRE_SECS);
    let tail = VideoDataset::generate(profile.drifted("night", StreamDomain::News, 11), POST_SECS);
    base.continue_with(&tail)
}

fn base_config() -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 2,
                ..IngestParams::default()
            },
            bootstrap_secs: 40.0,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.05,
            ls: 8,
            level: SpecializationLevel::Aggressive,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(20.0),
        ..ServiceConfig::default()
    }
}

fn adaptive_config() -> ServiceConfig {
    ServiceConfig {
        adaptation: Some(AdaptationConfig {
            audit_fraction: 0.08,
            window_labels: 150,
            min_window_labels: 40,
            drift_threshold: 0.45,
            window_secs: 30.0,
            cooldown_secs: 90.0,
            target: AccuracyTarget::both(0.95),
            policy: TradeoffPolicy::Balance,
            ..AdaptationConfig::default()
        }),
        ..base_config()
    }
}

/// The query wave issued after each ingest tick: the pre-drift dominant
/// class over the whole timeline plus the freshest window.
fn wave(workload: &VideoDataset, now_secs: f64) -> Vec<QueryRequest> {
    let class = workload.dominant_classes(1)[0];
    vec![
        QueryRequest::new(class),
        QueryRequest::new(class).with_filter(
            QueryFilter::any().with_time_range((now_secs - TICK_SECS).max(0.0), now_secs),
        ),
    ]
}

struct MixedRun {
    frames: usize,
    queries: usize,
    ingest_secs: f64,
    serve_secs: f64,
    service: FocusService,
    dir: std::path::PathBuf,
}

/// Runs the full drift workload against one fresh service.
fn run_mixed(workload: &VideoDataset, config: ServiceConfig, dir_tag: &str) -> MixedRun {
    let dir = std::env::temp_dir().join(format!("focus_bench_adaptive_{dir_tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
    service
        .register_stream(workload.profile.stream_id, workload.profile.fps)
        .unwrap();
    let per_tick = (TICK_SECS * workload.profile.fps as f64) as usize;
    let mut frames_pushed = 0usize;
    let mut queries_served = 0usize;
    let mut ingest_secs = 0.0f64;
    let mut serve_secs = 0.0f64;
    let mut now_secs = 0.0f64;
    for chunk in workload.frames.chunks(per_tick) {
        let tick: Vec<Frame> = chunk.to_vec();
        now_secs += TICK_SECS;
        let start = Instant::now();
        service.advance(&tick).unwrap();
        service.maintain().unwrap();
        ingest_secs += start.elapsed().as_secs_f64();
        frames_pushed += tick.len();

        let requests = wave(workload, now_secs);
        let start = Instant::now();
        let outcomes = service.serve(&requests).unwrap();
        serve_secs += start.elapsed().as_secs_f64();
        std::hint::black_box(outcomes.iter().map(|o| o.frames.len()).sum::<usize>());
        queries_served += requests.len();
    }
    MixedRun {
        frames: frames_pushed,
        queries: queries_served,
        ingest_secs,
        serve_secs,
        service,
        dir,
    }
}

/// Worst-class precision/recall over the post-drift evaluation window.
fn post_drift_accuracy(
    service: &FocusService,
    eval: &VideoDataset,
    labels: &GroundTruthLabels,
) -> (f64, f64) {
    let mut worst_precision = 1.0f64;
    let mut worst_recall = 1.0f64;
    for class in eval.dominant_classes(EVAL_CLASSES) {
        let request = QueryRequest::new(class)
            .with_filter(QueryFilter::any().with_time_range(EVAL_START_SECS, PRE_SECS + POST_SECS));
        let outcome = &service.serve(std::slice::from_ref(&request)).unwrap()[0];
        let report = labels.evaluate(class, &outcome.frames);
        worst_precision = worst_precision.min(report.precision);
        worst_recall = worst_recall.min(report.recall);
    }
    (worst_precision, worst_recall)
}

fn bench_service_adaptive(c: &mut Criterion) {
    let workload = workload();
    let mut group = c.benchmark_group("service_adaptive");
    group.sample_size(10);
    group.throughput(Throughput::Elements(workload.frames.len() as u64));
    group.bench_function("static_drift_run", |b| {
        b.iter(|| run_mixed(&workload, base_config(), "criterion_static").frames)
    });
    group.bench_function("adaptive_drift_run", |b| {
        b.iter(|| run_mixed(&workload, adaptive_config(), "criterion_adaptive").frames)
    });
    group.finish();

    write_trajectory(&workload);
}

/// Measures one representative run of each mode and writes
/// `BENCH_adaptive.json` for future PRs to compare against.
fn write_trajectory(workload: &VideoDataset) {
    let static_run = run_mixed(workload, base_config(), "trajectory_static");
    let adaptive_run = run_mixed(workload, adaptive_config(), "trajectory_adaptive");

    let gt = GroundTruthCnn::resnet152();
    let eval_frames: Vec<Frame> = workload
        .frames
        .iter()
        .filter(|f| f.timestamp_secs >= EVAL_START_SECS)
        .cloned()
        .collect();
    let eval = VideoDataset::from_frames(
        workload.profile.clone(),
        PRE_SECS + POST_SECS - EVAL_START_SECS,
        eval_frames,
    );
    let labels = GroundTruthLabels::compute(&eval, &gt);
    let (static_precision, static_recall) =
        post_drift_accuracy(&static_run.service, &eval, &labels);
    let (adaptive_precision, adaptive_recall) =
        post_drift_accuracy(&adaptive_run.service, &eval, &labels);

    let stats = adaptive_run.service.stats();
    let opens = stats.io.segments_opened() as f64 / stats.queries_served.max(1) as f64;
    let gt_ingest_all = gt.cost_per_inference().seconds() * workload.object_count() as f64;
    let adaptation_gpu = stats
        .gpu
        .submitted_by_phase
        .get("audit")
        .copied()
        .unwrap_or(0.0)
        + stats
            .gpu
            .submitted_by_phase
            .get("selection")
            .copied()
            .unwrap_or(0.0);

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"frames_total\": {},\n  \"queries_total\": {},\n",
        static_run.frames, static_run.queries
    ));
    json.push_str(&format!(
        "  \"drift\": {{ \"pre_secs\": {PRE_SECS}, \"post_secs\": {POST_SECS}, \
         \"reconfigurations\": {} }},\n",
        stats.reconfigurations
    ));
    json.push_str("  \"runs\": {\n");
    for (name, run) in [("static", &static_run), ("adaptive", &adaptive_run)] {
        json.push_str(&format!(
            "    \"{name}\": {{ \"ingest_secs\": {:.6}, \"frames_per_sec\": {:.1}, \
             \"queries_per_sec\": {:.1} }}{}\n",
            run.ingest_secs,
            run.frames as f64 / run.ingest_secs,
            run.queries as f64 / run.serve_secs,
            if name == "static" { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"accuracy\": {\n");
    json.push_str(&format!(
        "    \"static_post_drift_worst_precision\": {static_precision:.4},\n"
    ));
    json.push_str(&format!(
        "    \"static_post_drift_worst_recall\": {static_recall:.4},\n"
    ));
    json.push_str(&format!(
        "    \"adaptive_post_drift_worst_precision\": {adaptive_precision:.4},\n"
    ));
    json.push_str(&format!(
        "    \"adaptive_post_drift_worst_recall\": {adaptive_recall:.4}\n"
    ));
    json.push_str("  },\n");
    json.push_str("  \"live\": {\n");
    json.push_str(&format!(
        "    \"cache_hit_rate\": {:.4},\n",
        stats.cache.hit_rate()
    ));
    json.push_str(&format!("    \"segments_opened_per_query\": {opens:.2},\n"));
    json.push_str(&format!(
        "    \"adaptation_gpu_share_of_gt_ingest\": {:.4}\n",
        adaptation_gpu / gt_ingest_all
    ));
    json.push_str("  }\n}\n");

    std::fs::remove_dir_all(&static_run.dir).ok();
    std::fs::remove_dir_all(&adaptive_run.dir).ok();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_service_adaptive);
criterion_main!(benches);
