//! Criterion micro-benchmark: concurrent query serving vs the serial query
//! engine on an overlapping workload, plus the cache-hit trajectory across
//! repeated query waves.
//!
//! Besides the usual bench output this writes `BENCH_query.json` to the
//! workspace root with queries/sec, per-query latency, GT-CNN inference
//! counts and the per-wave cache-hit rate, so the repository accumulates a
//! query-path perf trajectory across changes.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_cnn::{GroundTruthCnn, ModelSpec};
use focus_core::{
    IngestCnn, IngestEngine, IngestOutput, IngestParams, QueryEngine, QueryRequest, QueryServer,
};
use focus_index::QueryFilter;
use focus_runtime::{GpuClusterSpec, GpuMeter};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn workload() -> (VideoDataset, IngestOutput) {
    // The recording length is NOT reduced under FOCUS_BENCH_SMOKE: the
    // request mix is derived from the dataset's dominant classes, and a
    // shorter recording changes that mix (fewer distinct classes), which
    // would make queries/sec incomparable to the committed baseline. The
    // whole bench costs a few seconds, so CI runs it at full scale.
    let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 120.0);
    let out = IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
    )
    .ingest(&ds, &GpuMeter::new());
    (ds, out)
}

/// An overlapping request mix: the dominant classes unrestricted, plus
/// narrowed (`kx`, time-range) and repeated variants of the same classes —
/// the traffic shape a shared index is meant to serve.
fn requests(ds: &VideoDataset) -> Vec<QueryRequest> {
    let classes = ds.dominant_classes(4);
    let mut requests: Vec<QueryRequest> = classes.iter().map(|c| QueryRequest::new(*c)).collect();
    for class in &classes {
        requests.push(QueryRequest::new(*class).with_filter(QueryFilter::any().with_kx(2)));
        requests.push(
            QueryRequest::new(*class).with_filter(QueryFilter::any().with_time_range(0.0, 60.0)),
        );
    }
    requests
}

fn bench_query_paths(c: &mut Criterion) {
    let (ds, out) = workload();
    let reqs = requests(&ds);
    let mut group = c.benchmark_group("query_rates");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reqs.len() as u64));

    group.bench_function(BenchmarkId::new("workload", "serial_engine"), |b| {
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        b.iter(|| {
            let meter = GpuMeter::new();
            reqs.iter()
                .map(|r| engine.query(&out, r.class, &r.filter, &meter).frames.len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::new("workload", "server_cold"), |b| {
        b.iter(|| {
            // A fresh server per iteration: dedup + batching, no warm cache.
            let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
            server
                .serve(&out, &reqs, &GpuMeter::new())
                .iter()
                .map(|o| o.frames.len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::new("workload", "server_warm"), |b| {
        let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        server.serve(&out, &reqs, &GpuMeter::new());
        b.iter(|| {
            server
                .serve(&out, &reqs, &GpuMeter::new())
                .iter()
                .map(|o| o.frames.len())
                .sum::<usize>()
        })
    });
    group.finish();

    write_trajectory(&ds, &out, &reqs);
}

/// Measures serial vs served wall-clock and the per-wave cache-hit
/// trajectory directly, and writes `BENCH_query.json` for future PRs to
/// compare against.
fn write_trajectory(ds: &VideoDataset, out: &IngestOutput, reqs: &[QueryRequest]) {
    let time_fn = |f: &mut dyn FnMut() -> usize| {
        let runs = 3;
        let start = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(f());
        }
        start.elapsed().as_secs_f64() / runs as f64
    };

    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let serial_secs = time_fn(&mut || {
        let meter = GpuMeter::new();
        reqs.iter()
            .map(|r| engine.query(out, r.class, &r.filter, &meter).frames.len())
            .sum()
    });
    let serial_meter = GpuMeter::new();
    let serial_inferences: usize = reqs
        .iter()
        .map(|r| {
            engine
                .query(out, r.class, &r.filter, &serial_meter)
                .centroid_inferences
        })
        .sum();

    // Cold servers are prebuilt outside the timed region: constructing a
    // server spawns its worker pool, which would otherwise dominate small
    // (smoke) workloads and make rates incomparable across workload sizes.
    let mut cold_servers: Vec<QueryServer> = (0..3)
        .map(|_| QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4)))
        .collect();
    let cold_secs = time_fn(&mut || {
        let server = cold_servers.pop().expect("one prebuilt server per run");
        server
            .serve(out, reqs, &GpuMeter::new())
            .iter()
            .map(|o| o.frames.len())
            .sum()
    });

    let warm_server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    warm_server.serve(out, reqs, &GpuMeter::new());
    let warm_secs = time_fn(&mut || {
        warm_server
            .serve(out, reqs, &GpuMeter::new())
            .iter()
            .map(|o| o.frames.len())
            .sum()
    });

    // Cache-hit trajectory: five waves of the same workload on one server.
    let trajectory_server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let trajectory_meter = GpuMeter::new();
    let mut waves = Vec::new();
    let mut prev = trajectory_server.cache_stats();
    for _ in 0..5 {
        let outcomes = trajectory_server.serve(out, reqs, &trajectory_meter);
        let stats = trajectory_server.cache_stats();
        let wave_hits = stats.hits - prev.hits;
        let wave_misses = stats.misses - prev.misses;
        let wave_total = wave_hits + wave_misses;
        let hit_rate = if wave_total == 0 {
            0.0
        } else {
            wave_hits as f64 / wave_total as f64
        };
        let model_latency: f64 =
            outcomes.iter().map(|o| o.latency_secs).sum::<f64>() / outcomes.len().max(1) as f64;
        waves.push((hit_rate, wave_misses, model_latency));
        prev = stats;
    }
    let served_inferences = prev.misses;

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"queries_per_wave\": {},\n", reqs.len()));
    json.push_str(&format!("  \"clusters\": {},\n", out.clusters));
    json.push_str(&format!("  \"objects_total\": {},\n", out.objects_total));
    json.push_str(&format!(
        "  \"gt_inferences\": {{ \"serial\": {serial_inferences}, \"served\": {served_inferences} }},\n",
    ));
    json.push_str("  \"runs\": {\n");
    let entries = [
        ("serial_engine", serial_secs),
        ("server_cold", cold_secs),
        ("server_warm", warm_secs),
    ];
    for (i, (name, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"secs\": {secs:.6}, \"queries_per_sec\": {:.1} }}{comma}\n",
            reqs.len() as f64 / secs
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"cache_hit_trajectory\": [\n");
    for (i, (hit_rate, misses, latency)) in waves.iter().enumerate() {
        let comma = if i + 1 < waves.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"wave\": {i}, \"hit_rate\": {hit_rate:.4}, \"fresh_inferences\": {misses}, \"model_latency_secs\": {latency:.6} }}{comma}\n",
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    let _ = ds;
}

criterion_group!(benches, bench_query_paths);
criterion_main!(benches);
