//! Criterion benchmark for track-level spatio-temporal queries: a mix of
//! region, transit, dwell, and speed-band TrackFilter queries over a
//! sealed multi-stream archive, comparing sketch-planned execution
//! (intersection before verification) against class-only planning that
//! verifies every class-matched candidate.
//!
//! Besides the usual bench output this writes `BENCH_tracks.json` to the
//! workspace root: queries/sec for the production sketch-planned mix,
//! candidates before/after the sketch intersection, and the GT
//! inferences each planning mode spends. CI's bench-smoke job guards the
//! file with the direction-aware `bench_guard`: `candidates_pruned_*`
//! must not fall, `inferences_*` totals must not rise.
//!
//! The paper-level claim in miniature, asserted before the file is
//! written: every query in the mix returns a payload byte-identical
//! under both planning modes, and across the mix the sketch-planned path
//! spends strictly fewer GT inferences than class-only planning.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_bench::bench_workload_secs;
use focus_cnn::GroundTruthCnn;
use focus_core::query::{Region, SegmentedPlan, TrackFilter, TrackPredicate};
use focus_core::service::{FocusService, ServiceConfig};
use focus_core::{IngestParams, QueryRequest, QueryServer, SealPolicy, StreamWorkerConfig};
use focus_runtime::{GpuClusterSpec, GpuMeter};
use focus_video::profile::profile_by_name;
use focus_video::{ClassId, VideoDataset};

/// Per-stream seconds of recording in the archive (halved under smoke).
const FULL_INGEST_SECS: f64 = 60.0;
/// Seal cadence: several segments per stream, so sketches absorb-merge
/// across seal boundaries on every plan.
const SEAL_SECS: f64 = 6.0;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(SEAL_SECS),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn archive(name: &str, datasets: &[VideoDataset]) -> (FocusService, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("focus_bench_track_queries_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut service =
        FocusService::create(&dir, service_config(), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    for ds in datasets {
        service.advance(&ds.frames).unwrap();
    }
    service.seal_all().unwrap();
    (service, dir)
}

/// The query mix: region entry/exit/visit, a transit, a dwell, and speed
/// bands — the same families `tests/track_queries.rs` pins for recall.
/// The frame is 1280x720; tracks move at up to ~4.5 px/frame.
fn query_mix() -> Vec<(&'static str, TrackFilter)> {
    let left = Region::new(0.0, 0.0, 640.0, 720.0);
    let right = Region::new(640.0, 0.0, 1280.0, 720.0);
    let band = Region::new(500.0, 120.0, 780.0, 600.0);
    vec![
        (
            "visit_left",
            TrackFilter::new().and(TrackPredicate::visits(left)),
        ),
        (
            "enter_band",
            TrackFilter::new().and(TrackPredicate::enters(band)),
        ),
        (
            "transit_left_to_right",
            TrackFilter::new().and(TrackPredicate::transit(left, right)),
        ),
        (
            "dwell_band_3s",
            TrackFilter::new().and(TrackPredicate::dwells(band, 3.0)),
        ),
        (
            "fast_tracks",
            TrackFilter::new().and(TrackPredicate::speed_above(60.0)),
        ),
        (
            "slow_in_left",
            TrackFilter::new()
                .and(TrackPredicate::speed_below(45.0))
                .and(TrackPredicate::visits(left)),
        ),
    ]
}

struct QueryRun {
    name: &'static str,
    candidates_class_only: usize,
    candidates_sketch: usize,
    gt_class_only: usize,
    gt_sketch: usize,
    result_objects: usize,
}

/// Plans one request both ways over the sealed corpus and serves each
/// plan through a fresh server (cold verdict caches → honest per-path
/// inference totals). Asserts payload identity.
fn run_query(service: &FocusService, name: &'static str, request: &QueryRequest) -> QueryRun {
    let corpus = service.corpus();
    let classes = corpus.lookup_classes(request.class, &request.filter);
    let sketch = corpus
        .plan_with_tail_scoped(request, None, &classes, true, true)
        .unwrap();
    let class_only = corpus
        .plan_with_tail_scoped(request, None, &classes, true, false)
        .unwrap();

    let serve = |planned: &SegmentedPlan| {
        let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        server
            .serve_resolved(
                std::slice::from_ref(&planned.plan),
                std::slice::from_ref(&planned.records),
                |id| corpus.centroids.get(&id).cloned(),
                &GpuMeter::new(),
            )
            .remove(0)
    };
    let sketch_outcome = serve(&sketch);
    let class_only_outcome = serve(&class_only);
    assert_eq!(
        (&sketch_outcome.frames, &sketch_outcome.objects),
        (&class_only_outcome.frames, &class_only_outcome.objects),
        "{name}: both planning modes must return identical payloads"
    );
    QueryRun {
        name,
        candidates_class_only: class_only.plan.candidates.len(),
        candidates_sketch: sketch.plan.candidates.len(),
        gt_class_only: class_only_outcome.centroid_inferences,
        gt_sketch: sketch_outcome.centroid_inferences,
        result_objects: sketch_outcome.objects.len(),
    }
}

fn bench_track_queries(c: &mut Criterion) {
    let ingest_secs = bench_workload_secs(FULL_INGEST_SECS);
    let datasets: Vec<VideoDataset> = ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), ingest_secs))
        .collect();
    let class: ClassId = datasets[0].dominant_classes(1)[0];
    let (service, dir) = archive("main", &datasets);

    let requests: Vec<QueryRequest> = query_mix()
        .into_iter()
        .map(|(_, filter)| QueryRequest::new(class).with_tracks(filter))
        .collect();

    // Measured runs first, on cold caches.
    let runs: Vec<QueryRun> = query_mix()
        .into_iter()
        .map(|(name, filter)| {
            run_query(
                &service,
                name,
                &QueryRequest::new(class).with_tracks(filter),
            )
        })
        .collect();

    // Production-path throughput of the sketch-planned mix, measured on
    // a warm service (the verdict cache amortizes exactly as it would in
    // steady state) for the `_per_sec` trajectory metric.
    let warmup = service.serve(&requests).unwrap();
    assert_eq!(warmup.len(), requests.len());
    let timed_iters = 10usize;
    let started = std::time::Instant::now();
    for _ in 0..timed_iters {
        service.serve(&requests).unwrap();
    }
    let queries_per_sec =
        (timed_iters * requests.len()) as f64 / started.elapsed().as_secs_f64().max(1e-9);

    let mut group = c.benchmark_group("track_queries");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));
    group.bench_function("sketch_planned_mix", |b| {
        b.iter(|| {
            service
                .serve(&requests)
                .unwrap()
                .iter()
                .map(|o| o.matched_clusters)
                .sum::<usize>()
        })
    });
    let class_only_server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    group.bench_function("class_only_mix", |b| {
        b.iter(|| {
            let corpus = service.corpus();
            requests
                .iter()
                .map(|request| {
                    let classes = corpus.lookup_classes(request.class, &request.filter);
                    let planned = corpus
                        .plan_with_tail_scoped(request, None, &classes, true, false)
                        .unwrap();
                    class_only_server
                        .serve_resolved(
                            std::slice::from_ref(&planned.plan),
                            std::slice::from_ref(&planned.records),
                            |id| corpus.centroids.get(&id).cloned(),
                            &GpuMeter::new(),
                        )
                        .remove(0)
                        .matched_clusters
                })
                .sum::<usize>()
        })
    });
    group.finish();

    write_trajectory(ingest_secs, queries_per_sec, &runs);
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes `BENCH_tracks.json` for future PRs to compare against.
fn write_trajectory(ingest_secs: f64, queries_per_sec: f64, runs: &[QueryRun]) {
    // The acceptance claim, on the mix totals: the sketch intersection
    // drops candidates before verification, so the sketch-planned path
    // spends strictly fewer GT inferences than class-only planning.
    let before_total: usize = runs.iter().map(|r| r.candidates_class_only).sum();
    let after_total: usize = runs.iter().map(|r| r.candidates_sketch).sum();
    let gt_class_only_total: usize = runs.iter().map(|r| r.gt_class_only).sum();
    let gt_sketch_total: usize = runs.iter().map(|r| r.gt_sketch).sum();
    assert!(
        after_total < before_total,
        "the sketch intersection must prune candidates ({after_total} vs {before_total})"
    );
    assert!(
        gt_sketch_total < gt_class_only_total,
        "sketch planning must spend strictly fewer GT inferences \
         ({gt_sketch_total} vs {gt_class_only_total})"
    );
    let pruned_fraction = (before_total - after_total) as f64 / before_total.max(1) as f64;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"ingest_secs\": {ingest_secs}, \"seal_secs\": {SEAL_SECS},\n"
    ));
    json.push_str("  \"mix\": {\n");
    json.push_str(&format!(
        "    \"track_mix_queries_per_sec\": {queries_per_sec:.2},\n"
    ));
    json.push_str(&format!(
        "    \"candidates_pruned_fraction\": {pruned_fraction:.4},\n"
    ));
    json.push_str(&format!(
        "    \"inferences_class_only_total\": {gt_class_only_total},\n"
    ));
    json.push_str(&format!(
        "    \"inferences_sketch_planned_total\": {gt_sketch_total}\n"
    ));
    json.push_str("  },\n");
    // Per-query detail: field names deliberately sit outside the guard's
    // rule patterns — the smoke run's halved archive shifts individual
    // queries more than the mix aggregates the guard judges.
    json.push_str("  \"queries\": {\n");
    for (i, run) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"candidate_count_class_only\": {}, \
             \"candidate_count_sketch\": {}, \"gt_count_class_only\": {}, \
             \"gt_count_sketch\": {}, \"result_objects\": {} }}{}\n",
            run.name,
            run.candidates_class_only,
            run.candidates_sketch,
            run.gt_class_only,
            run.gt_sketch,
            run.result_objects,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tracks.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_track_queries);
criterion_main!(benches);
