//! Criterion micro-benchmark: the full ingest pipeline (motion filtering,
//! pixel differencing, cheap-CNN classification, clustering, index
//! construction), serial vs sharded over a 3-camera workload.
//!
//! Besides the usual bench output this writes `BENCH_ingest.json` to the
//! workspace root with serial and sharded throughput (frames/sec), so the
//! repository accumulates a perf trajectory across changes.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_cnn::ModelSpec;
use focus_core::{ingest_serial, IngestCnn, IngestEngine, IngestParams, ShardedIngest};
use focus_runtime::{GpuMeter, WorkerPool};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn workload() -> Vec<VideoDataset> {
    // A quarter-length workload under FOCUS_BENCH_SMOKE=1 (CI's bench-smoke
    // job); frames/sec is insensitive to the cut.
    let secs = focus_bench::bench_workload_secs(120.0);
    ["auburn_c", "lausanne", "cnn"]
        .iter()
        .map(|name| VideoDataset::generate(profile_by_name(name).unwrap(), secs))
        .collect()
}

fn engine(k: usize) -> IngestEngine {
    IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k,
            ..IngestParams::default()
        },
    )
}

fn bench_ingest(c: &mut Criterion) {
    let datasets = workload();
    let frames: u64 = datasets.iter().map(|d| d.frames.len() as u64).sum();
    let mut group = c.benchmark_group("ingest_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames));

    group.bench_function(BenchmarkId::new("3cam_120s", "serial"), |b| {
        let engine = engine(4);
        b.iter(|| ingest_serial(&engine, &datasets, &GpuMeter::new()).clusters())
    });
    for shards in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("3cam_120s", format!("sharded{shards}")),
            &shards,
            |b, &shards| {
                let sharded = ShardedIngest::with_pool(engine(4), WorkerPool::new(shards));
                b.iter(|| sharded.ingest(&datasets, &GpuMeter::new()).clusters())
            },
        );
    }
    group.bench_function("3cam_120s_no_clustering", |b| {
        let engine = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                enable_clustering: false,
                ..IngestParams::default()
            },
        );
        b.iter(|| ingest_serial(&engine, &datasets, &GpuMeter::new()).clusters())
    });
    group.finish();

    write_trajectory(&datasets, frames);
}

/// Measures serial vs sharded wall-clock directly and writes the
/// frames-per-second trajectory file for future PRs to compare against.
fn write_trajectory(datasets: &[VideoDataset], frames: u64) {
    let time_fn = |f: &dyn Fn() -> usize| {
        let runs = 3;
        let start = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(f());
        }
        start.elapsed().as_secs_f64() / runs as f64
    };

    let serial_engine = engine(4);
    let serial_secs =
        time_fn(&|| ingest_serial(&serial_engine, datasets, &GpuMeter::new()).clusters());
    let mut entries = vec![("serial".to_string(), serial_secs)];
    for shards in [2usize, 4] {
        let sharded = ShardedIngest::with_pool(engine(4), WorkerPool::new(shards));
        let secs = time_fn(&|| sharded.ingest(datasets, &GpuMeter::new()).clusters());
        entries.push((format!("sharded_{shards}"), secs));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"streams\": {},\n", datasets.len()));
    json.push_str(&format!("  \"frames_total\": {frames},\n"));
    json.push_str(&format!(
        "  \"objects_total\": {},\n",
        datasets.iter().map(|d| d.object_count()).sum::<usize>()
    ));
    json.push_str("  \"runs\": {\n");
    for (i, (name, secs)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"{name}\": {{ \"secs\": {secs:.4}, \"frames_per_sec\": {:.1} }}{comma}\n",
            frames as f64 / secs
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
