//! Criterion micro-benchmark: the full ingest pipeline (motion filtering,
//! pixel differencing, cheap-CNN classification, clustering, index
//! construction) on a short recording.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use focus_cnn::ModelSpec;
use focus_core::{IngestCnn, IngestEngine, IngestParams};
use focus_runtime::GpuMeter;
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn bench_ingest(c: &mut Criterion) {
    let dataset = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 120.0);
    let objects = dataset.object_count() as u64;
    let mut group = c.benchmark_group("ingest_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(objects));
    for (label, k) in [("k4", 4usize), ("k60", 60)] {
        group.bench_with_input(BenchmarkId::new("auburn_c_120s", label), &k, |b, &k| {
            let engine = IngestEngine::new(
                IngestCnn::generic(ModelSpec::cheap_cnn_1()),
                IngestParams {
                    k,
                    ..IngestParams::default()
                },
            );
            b.iter(|| engine.ingest(&dataset, &GpuMeter::new()).clusters)
        });
    }
    group.bench_function("auburn_c_120s_no_clustering", |b| {
        let engine = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                enable_clustering: false,
                ..IngestParams::default()
            },
        );
        b.iter(|| engine.ingest(&dataset, &GpuMeter::new()).clusters)
    });
    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
