//! Criterion benchmark for the live [`FocusService`]: a mixed workload
//! that interleaves ingest ticks with query waves against one service —
//! the shape the batch benches cannot measure.
//!
//! Besides the usual bench output this writes `BENCH_service.json` to the
//! workspace root with the mixed run's ingest rate (frames/sec), serving
//! rate (queries/sec) and tail-hit fraction, so the repository accumulates
//! a live-serving perf trajectory across changes (guarded by CI's
//! bench-smoke job).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_cnn::GroundTruthCnn;
use focus_core::service::{FocusService, ServiceConfig};
use focus_core::{IngestParams, QueryRequest, SealPolicy, ServiceStats, StreamWorkerConfig};
use focus_index::QueryFilter;
use focus_runtime::GpuClusterSpec;
use focus_video::profile::profile_by_name;
use focus_video::{Frame, VideoDataset};

/// Seconds of stream ingested per mixed tick (one query wave per tick).
const TICK_SECS: f64 = 10.0;
/// Seconds of stream per durable segment.
const SEGMENT_SECS: f64 = 20.0;

fn workload() -> Vec<VideoDataset> {
    let secs = focus_bench::bench_workload_secs(240.0);
    ["auburn_c", "lausanne"]
        .iter()
        .map(|name| VideoDataset::generate(profile_by_name(name).unwrap(), secs))
        .collect()
}

fn config() -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            // Specialization off: retrains would re-cluster mid-run and
            // make rates depend on retrain timing instead of the serving
            // machinery under test.
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(SEGMENT_SECS),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn service(name: &str) -> (FocusService, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("focus_bench_service_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let svc = FocusService::create(&dir, config(), GroundTruthCnn::resnet152()).unwrap();
    (svc, dir)
}

/// The query wave issued after each ingest tick: the dominant classes over
/// the full timeline plus the freshest window (which only the tail can
/// answer until the next seal).
fn wave(datasets: &[VideoDataset], now_secs: f64) -> Vec<QueryRequest> {
    let classes = datasets[0].dominant_classes(2);
    let second = classes.get(1).copied().unwrap_or(classes[0]);
    vec![
        QueryRequest::new(classes[0]),
        QueryRequest::new(classes[0]).with_filter(
            QueryFilter::any().with_time_range((now_secs - TICK_SECS).max(0.0), now_secs),
        ),
        QueryRequest::new(second).with_filter(QueryFilter::any().with_kx(3)),
    ]
}

/// Runs the full mixed workload against one fresh service; returns
/// (frames pushed, queries served, ingest seconds, serve seconds, stats).
fn run_mixed(datasets: &[VideoDataset], dir_tag: &str) -> (usize, usize, f64, f64, ServiceStats) {
    let (mut svc, dir) = service(dir_tag);
    for ds in datasets {
        svc.register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames_pushed = 0usize;
    let mut queries_served = 0usize;
    let mut ingest_secs = 0.0f64;
    let mut serve_secs = 0.0f64;
    let mut now_secs = 0.0f64;
    loop {
        let mut tick: Vec<Frame> = Vec::new();
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let frames_per_tick = (TICK_SECS * ds.profile.fps as f64) as usize;
            let end = (*cursor + frames_per_tick).min(ds.frames.len());
            tick.extend(ds.frames[*cursor..end].iter().cloned());
            *cursor = end;
        }
        if tick.is_empty() {
            break;
        }
        now_secs += TICK_SECS;
        let start = Instant::now();
        svc.advance(&tick).unwrap();
        svc.maintain().unwrap();
        ingest_secs += start.elapsed().as_secs_f64();
        frames_pushed += tick.len();

        let requests = wave(datasets, now_secs);
        let start = Instant::now();
        let outcomes = svc.serve(&requests).unwrap();
        serve_secs += start.elapsed().as_secs_f64();
        std::hint::black_box(outcomes.iter().map(|o| o.frames.len()).sum::<usize>());
        queries_served += requests.len();
    }
    let stats = svc.stats();
    std::fs::remove_dir_all(&dir).ok();
    (
        frames_pushed,
        queries_served,
        ingest_secs,
        serve_secs,
        stats,
    )
}

fn bench_service_mixed(c: &mut Criterion) {
    let datasets = workload();
    let frames_total: usize = datasets.iter().map(|d| d.frames.len()).sum();
    let mut group = c.benchmark_group("service_mixed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(frames_total as u64));
    group.bench_function("ingest_plus_serve", |b| {
        b.iter(|| run_mixed(&datasets, "criterion").0)
    });
    group.finish();

    write_trajectory(&datasets);
}

/// Measures one representative mixed run and writes `BENCH_service.json`
/// for future PRs to compare against.
fn write_trajectory(datasets: &[VideoDataset]) {
    let (frames, queries, ingest_secs, serve_secs, stats) = run_mixed(datasets, "trajectory");
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"streams\": {},\n", datasets.len()));
    json.push_str(&format!("  \"frames_total\": {frames},\n"));
    json.push_str(&format!("  \"queries_total\": {queries},\n"));
    json.push_str("  \"runs\": {\n");
    json.push_str(&format!(
        "    \"ingest\": {{ \"secs\": {ingest_secs:.6}, \"frames_per_sec\": {:.1} }},\n",
        frames as f64 / ingest_secs
    ));
    json.push_str(&format!(
        "    \"serve\": {{ \"secs\": {serve_secs:.6}, \"queries_per_sec\": {:.1} }}\n",
        queries as f64 / serve_secs
    ));
    json.push_str("  },\n");
    json.push_str("  \"live\": {\n");
    json.push_str(&format!(
        "    \"tail_hit_fraction\": {:.4},\n",
        stats.tail_hit_fraction()
    ));
    json.push_str(&format!(
        "    \"cache_hit_rate\": {:.4},\n",
        stats.cache.hit_rate()
    ));
    json.push_str(&format!("    \"segments\": {},\n", stats.segments));
    json.push_str(&format!(
        "    \"segments_sealed\": {},\n",
        stats.segments_sealed
    ));
    json.push_str(&format!(
        "    \"gpu_utilization\": {:.4}\n",
        stats.gpu.utilization()
    ));
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_service_mixed);
criterion_main!(benches);
