//! Criterion micro-benchmark: query-time latency over an ingested stream
//! and the end-to-end quick experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use focus_cnn::{GroundTruthCnn, ModelSpec};
use focus_core::{
    ExperimentConfig, ExperimentRunner, IngestCnn, IngestEngine, IngestParams, QueryEngine,
};
use focus_index::QueryFilter;
use focus_runtime::{GpuClusterSpec, GpuMeter};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn bench_query(c: &mut Criterion) {
    let dataset = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 120.0);
    let classes = dataset.dominant_classes(3);
    let ingest = IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
    )
    .ingest(&dataset, &GpuMeter::new());
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("query_dominant_classes", |b| {
        b.iter(|| {
            classes
                .iter()
                .map(|class| {
                    engine
                        .query(&ingest, *class, &QueryFilter::any(), &GpuMeter::new())
                        .frames
                        .len()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("quick_experiment_auburn_c", |b| {
        let profile = profile_by_name("auburn_c").unwrap();
        let runner = ExperimentRunner::new(ExperimentConfig {
            duration_secs: 90.0,
            sample_secs: 45.0,
            target: focus_core::AccuracyTarget::both(0.9),
            ..ExperimentConfig::quick()
        });
        b.iter(|| runner.run_stream(&profile).map(|r| r.clusters).unwrap_or(0))
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
