//! Criterion benchmark for anytime query execution: a rare-class query
//! mix over a deep, many-segment archive, comparing the adaptive-sampling
//! anytime loop ([`FocusService::serve_anytime`]) against the exhaustive
//! planner ([`FocusService::serve`]) on an identical twin service.
//!
//! Besides the usual bench output this writes `BENCH_anytime.json` to the
//! workspace root: per query class, the results-per-GT-inference curve
//! (cumulative distinct results after each round's cumulative fresh
//! inferences), the time and fresh inferences to the first distinct
//! result, the fresh inferences to 90% recall, and the exhaustive run's
//! totals next to them. CI's bench-smoke job guards the file with the
//! direction-aware `bench_guard`: `*_to_first_result` and
//! `inferences_to_*` must not rise, `results_per_inference` must not
//! fall.
//!
//! The paper-level claim in miniature, asserted before the file is
//! written: on the rare-class mix the anytime path reaches its first
//! distinct result *and* 90% recall in strictly fewer GT inferences than
//! the exhaustive planner spends in total — while run to exhaustion it
//! returns byte-identical frames and objects.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_bench::bench_workload_secs;
use focus_cnn::GroundTruthCnn;
use focus_core::query::{AnytimeMode, AnytimePartial, AnytimeTermination};
use focus_core::service::{FocusService, ServiceConfig};
use focus_core::{IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig};
use focus_runtime::GpuClusterSpec;
use focus_video::profile::profile_by_name;
use focus_video::{ClassId, VideoDataset};

use std::collections::HashMap;

/// Per-stream seconds of recording in the archive (halved under smoke).
const FULL_INGEST_SECS: f64 = 60.0;
/// Seal cadence: short seals → many segments → many sampling chunks.
const SEAL_SECS: f64 = 6.0;
/// Candidates verified per anytime round.
const ROUND_BUDGET: usize = 4;
/// Rare classes queried (ascending frequency, at least this many objects
/// so every query has results to find).
const MIX_CLASSES: usize = 2;
const MIN_CLASS_OBJECTS: usize = 2;

fn service_config() -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(SEAL_SECS),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn archive(name: &str, datasets: &[VideoDataset]) -> (FocusService, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("focus_bench_query_anytime_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut service =
        FocusService::create(&dir, service_config(), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    for ds in datasets {
        service.advance(&ds.frames).unwrap();
    }
    service.seal_all().unwrap();
    (service, dir)
}

/// The rare end of the archive's class distribution: ascending frequency,
/// keeping only classes common enough to have something to find.
fn rare_class_mix(datasets: &[VideoDataset]) -> Vec<ClassId> {
    let mut hist: HashMap<ClassId, usize> = HashMap::new();
    for ds in datasets {
        for (class, count) in ds.class_histogram() {
            *hist.entry(class).or_insert(0) += count;
        }
    }
    let mut entries: Vec<(ClassId, usize)> = hist
        .into_iter()
        .filter(|&(_, count)| count >= MIN_CLASS_OBJECTS)
        .collect();
    entries.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    entries
        .into_iter()
        .take(MIX_CLASSES)
        .map(|(c, _)| c)
        .collect()
}

/// One (cumulative inferences, cumulative distinct results) curve point.
struct CurvePoint {
    after_inferences: usize,
    distinct_results: usize,
}

struct ClassRun {
    class: ClassId,
    candidates: usize,
    total_results: usize,
    exhaustive_inferences: usize,
    exhaustive_secs: f64,
    inferences_to_first_result: usize,
    time_to_first_result_secs: f64,
    inferences_to_90_recall: usize,
    curve: Vec<CurvePoint>,
}

/// Runs one class through both paths: exhaustive on the twin, anytime
/// (run to exhaustion, streaming partials) on the main service. Asserts
/// payload identity and extracts the anytime cost-to-X metrics.
fn run_class(service: &FocusService, twin: &FocusService, class: ClassId) -> ClassRun {
    let exhaustive_request = QueryRequest::new(class);
    let exhaustive = twin
        .serve(std::slice::from_ref(&exhaustive_request))
        .unwrap()
        .remove(0);

    let request = QueryRequest::new(class).with_anytime(AnytimeMode::incremental(ROUND_BUDGET));
    let mut partials: Vec<AnytimePartial> = Vec::new();
    let anytime = service
        .serve_anytime_with(&request, |p| partials.push(p.clone()))
        .unwrap();
    assert_eq!(anytime.termination, AnytimeTermination::CandidatesExhausted);
    assert_eq!(
        (&anytime.outcome.frames, &anytime.outcome.objects),
        (&exhaustive.frames, &exhaustive.objects),
        "run-to-exhaustion anytime must equal the exhaustive planner"
    );

    let total_results = exhaustive.objects.len();
    assert!(total_results > 0, "mix classes must have results to find");
    let target_90 = (total_results as f64 * 0.9).ceil() as usize;

    let mut curve = Vec::with_capacity(partials.len());
    let mut spent = 0usize;
    let mut found = 0usize;
    let mut gpu_secs = 0.0f64;
    let mut to_first: Option<(usize, f64)> = None;
    let mut to_90: Option<usize> = None;
    for partial in &partials {
        spent += partial.inferences_spent;
        gpu_secs += partial.latency_secs;
        found += partial.new_results.len();
        curve.push(CurvePoint {
            after_inferences: spent,
            distinct_results: found,
        });
        if to_first.is_none() && found > 0 {
            to_first = Some((spent, gpu_secs));
        }
        if to_90.is_none() && found >= target_90 {
            to_90 = Some(spent);
        }
    }
    assert_eq!(found, total_results, "partials cover the full result set");
    let (inferences_to_first_result, time_to_first_result_secs) =
        to_first.expect("results exist, so some round surfaced the first");
    let inferences_to_90_recall = to_90.expect("exhaustion reaches any recall level");

    ClassRun {
        class,
        candidates: anytime.outcome.matched_clusters,
        total_results,
        exhaustive_inferences: exhaustive.centroid_inferences,
        exhaustive_secs: exhaustive.latency_secs,
        inferences_to_first_result,
        time_to_first_result_secs,
        inferences_to_90_recall,
        curve,
    }
}

fn bench_query_anytime(c: &mut Criterion) {
    let ingest_secs = bench_workload_secs(FULL_INGEST_SECS);
    let datasets: Vec<VideoDataset> = ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), ingest_secs))
        .collect();
    let mix = rare_class_mix(&datasets);
    assert_eq!(mix.len(), MIX_CLASSES, "archive too shallow for the mix");
    let (service, dir) = archive("main", &datasets);
    let (twin, twin_dir) = archive("twin", &datasets);

    // Measured runs first, on cold caches, in the same order on both
    // services so verdict-cache warming is symmetric between the paths.
    let runs: Vec<ClassRun> = mix
        .iter()
        .map(|&class| run_class(&service, &twin, class))
        .collect();

    let mut group = c.benchmark_group("query_anytime");
    group.sample_size(10);
    group.throughput(Throughput::Elements(mix.len() as u64));
    group.bench_function("anytime_exhaustion_mix", |b| {
        b.iter(|| {
            mix.iter()
                .map(|&class| {
                    let request = QueryRequest::new(class)
                        .with_anytime(AnytimeMode::incremental(ROUND_BUDGET));
                    service.serve_anytime(&request).unwrap().fresh_inferences
                })
                .sum::<usize>()
        })
    });
    group.bench_function("exhaustive_mix", |b| {
        b.iter(|| {
            let requests: Vec<QueryRequest> = mix.iter().map(|&c| QueryRequest::new(c)).collect();
            twin.serve(&requests)
                .unwrap()
                .iter()
                .map(|o| o.centroid_inferences)
                .sum::<usize>()
        })
    });
    group.finish();

    write_trajectory(ingest_secs, &runs);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&twin_dir).ok();
}

/// Writes `BENCH_anytime.json` for future PRs to compare against.
fn write_trajectory(ingest_secs: f64, runs: &[ClassRun]) {
    // The acceptance claim, on the mix totals: strictly fewer GT
    // inferences to the first distinct result and to 90% recall than the
    // exhaustive planner spends in total.
    let exhaustive_total: usize = runs.iter().map(|r| r.exhaustive_inferences).sum();
    let to_first_total: usize = runs.iter().map(|r| r.inferences_to_first_result).sum();
    let to_90_total: usize = runs.iter().map(|r| r.inferences_to_90_recall).sum();
    assert!(
        to_first_total < exhaustive_total,
        "first result must cost strictly less than exhaustive ({to_first_total} vs {exhaustive_total})"
    );
    assert!(
        to_90_total < exhaustive_total,
        "90% recall must cost strictly less than exhaustive ({to_90_total} vs {exhaustive_total})"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"ingest_secs\": {ingest_secs}, \"seal_secs\": {SEAL_SECS}, \
         \"round_budget\": {ROUND_BUDGET},\n"
    ));
    json.push_str("  \"mix\": {\n");
    json.push_str(&format!(
        "    \"exhaustive_inferences_total\": {exhaustive_total},\n"
    ));
    json.push_str(&format!(
        "    \"inferences_to_first_result\": {to_first_total},\n"
    ));
    json.push_str(&format!(
        "    \"inferences_to_90_recall\": {to_90_total},\n"
    ));
    json.push_str(&format!(
        "    \"time_to_first_result_secs\": {:.6},\n",
        runs.iter()
            .map(|r| r.time_to_first_result_secs)
            .sum::<f64>()
    ));
    let target_total: f64 = runs
        .iter()
        .map(|r| (r.total_results as f64 * 0.9).ceil())
        .sum();
    json.push_str(&format!(
        "    \"results_per_inference\": {:.4}\n  }},\n",
        target_total / (to_90_total.max(1) as f64)
    ));
    // Per-class detail is keyed by rarity rank, and its field names are
    // deliberately *outside* the guard's rule patterns: the smoke run's
    // halved archive surfaces a different rare tail, so rank-to-class
    // alignment (and with it per-class ratios) is not stable. The guard
    // judges the mix aggregates above.
    json.push_str("  \"classes\": {\n");
    for (i, run) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    \"rare_{i}\": {{ \"class_id\": {}, \"candidates\": {}, \"total_results\": {}, \
             \"exhaustive_inference_count\": {}, \"exhaustive_gpu_secs\": {:.6}, \
             \"first_result_after_inferences\": {}, \"first_result_gpu_secs\": {:.6}, \
             \"recall90_after_inferences\": {},\n",
            run.class.0,
            run.candidates,
            run.total_results,
            run.exhaustive_inferences,
            run.exhaustive_secs,
            run.inferences_to_first_result,
            run.time_to_first_result_secs,
            run.inferences_to_90_recall,
        ));
        json.push_str("      \"curve\": [");
        for (j, point) in run.curve.iter().enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            json.push_str(&format!(
                "{{ \"after_inferences\": {}, \"distinct_results\": {} }}",
                point.after_inferences, point.distinct_results
            ));
        }
        json.push_str(&format!(
            "] }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_anytime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_query_anytime);
criterion_main!(benches);
