//! Criterion micro-benchmark: simulated CNN classification and feature
//! extraction (the per-object ingest work).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_cnn::specialize::SpecializationLevel;
use focus_cnn::{CheapCnn, Classifier, GroundTruthCnn, SpecializedCnn};
use focus_video::profile::profile_by_name;
use focus_video::{ObjectObservation, VideoDataset};

fn sample_objects(n: usize) -> Vec<ObjectObservation> {
    let dataset = VideoDataset::generate(profile_by_name("jacksonh").unwrap(), 120.0);
    dataset.objects().take(n).cloned().collect()
}

fn bench_inference(c: &mut Criterion) {
    let objects = sample_objects(2000);
    let gt = GroundTruthCnn::resnet152();
    let cheap = CheapCnn::cheap_cnn_2();
    let labelled: Vec<_> = objects
        .iter()
        .map(|o| (o.clone(), gt.classify_top1(o)))
        .collect();
    let specialized =
        SpecializedCnn::train("jacksonh", SpecializationLevel::Medium, &labelled, 15).unwrap();

    let mut group = c.benchmark_group("cnn_inference");
    group.throughput(Throughput::Elements(objects.len() as u64));
    group.bench_function("ground_truth_top1", |b| {
        b.iter(|| {
            objects
                .iter()
                .map(|o| gt.classify_top1(o).0 as u64)
                .sum::<u64>()
        })
    });
    group.bench_function("cheap_cnn_top60", |b| {
        b.iter(|| {
            objects
                .iter()
                .map(|o| cheap.classify_top_k(o, 60).ranked.len())
                .sum::<usize>()
        })
    });
    group.bench_function("specialized_top4", |b| {
        b.iter(|| {
            objects
                .iter()
                .map(|o| specialized.classify_top_k(o, 4).ranked.len())
                .sum::<usize>()
        })
    });
    group.bench_function("feature_extraction", |b| {
        b.iter(|| {
            objects
                .iter()
                .map(|o| cheap.extract_features(o).0[0])
                .sum::<f32>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
