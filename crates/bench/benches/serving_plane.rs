//! Criterion benchmark for the multi-tenant request plane: an open-loop
//! arrival process drives [`RequestPlane`] in front of a fully ingested
//! [`FocusService`] at two fixed rates — below and above the plane's
//! admission capacity — on a **virtual clock**, so queueing, batching and
//! shedding dynamics are exact and machine-independent.
//!
//! Besides the usual bench output this writes `BENCH_serving.json` to the
//! workspace root: for each arrival rate, the shed fraction and the
//! p50/p99/p999 submit-to-answer latencies read from the plane's
//! log-bucketed histograms. CI's bench-smoke job guards the file with the
//! direction-aware `bench_guard` — tail percentiles and the shed fraction
//! must not rise. The above-capacity run is the paper-level claim in
//! miniature: overload surfaces as explicit `Overloaded` backpressure
//! while p999 stays bounded by the deadline, instead of an unbounded
//! queue.
//!
//! Like `service_adaptive`, this bench runs the **same workload under
//! `FOCUS_BENCH_SMOKE`**: every metric derives from a deterministic
//! virtual-clock simulation that takes wall-clock milliseconds, so there
//! is nothing to cut.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_cnn::GroundTruthCnn;
use focus_core::service::{FocusService, ServiceConfig};
use focus_core::serving::{RequestPlane, ServingConfig, TenantConfig, TenantId};
use focus_core::{IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig};
use focus_index::QueryFilter;
use focus_runtime::{Clock, GpuClusterSpec, VirtualClock};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

/// Seconds of recording ingested into the backend before the query storm.
const INGEST_SECS: f64 = 30.0;
/// Fixed per-batch dispatch overhead added to the modelled GPU latency.
const BATCH_OVERHEAD_SECS: f64 = 0.002;
/// Arrivals in the below-capacity run.
const N_BELOW: usize = 1500;
/// Arrivals in the above-capacity run.
const N_ABOVE: usize = 4000;
/// Below-capacity offered load (requests/sec across both tenants).
const RATE_BELOW: f64 = 80.0;
/// Above-capacity offered load: ~6.7× the 120/s the buckets sustain.
const RATE_ABOVE: f64 = 800.0;

fn plane_config() -> ServingConfig {
    let tenant = TenantConfig {
        weight: 1.0,
        rate_per_sec: 60.0,
        burst: 24.0,
        deadline_secs: 1.0,
    };
    ServingConfig {
        queue_bound: 64,
        batch_max_requests: 16,
        dispatch_margin_secs: 0.05,
        default_tenant: tenant.clone(),
        tenants: Vec::new(),
    }
    .with_tenant(TenantId(0), tenant.clone())
    .with_tenant(
        TenantId(1),
        TenantConfig {
            weight: 2.0,
            ..tenant
        },
    )
}

fn backend() -> (FocusService, std::path::PathBuf, Vec<QueryRequest>) {
    let dir = std::env::temp_dir().join("focus_bench_serving_plane");
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(10.0),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    };
    let dataset = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), INGEST_SECS);
    let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
    service
        .register_stream(dataset.profile.stream_id, dataset.profile.fps)
        .unwrap();
    service.advance(&dataset.frames).unwrap();
    service.seal_all().unwrap();

    let classes = dataset.dominant_classes(2);
    let second = classes.get(1).copied().unwrap_or(classes[0]);
    let pool = vec![
        QueryRequest::new(classes[0]),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::any().with_time_range(0.0, INGEST_SECS / 2.0)),
        QueryRequest::new(second),
        QueryRequest::new(second)
            .with_filter(QueryFilter::any().with_time_range(INGEST_SECS / 3.0, INGEST_SECS)),
    ];
    (service, dir, pool)
}

struct RateRun {
    offered_per_sec: f64,
    submitted: u64,
    answered: u64,
    expired: u64,
    shed_fraction: f64,
    max_queue_len: u64,
    p50_secs: f64,
    p99_secs: f64,
    p999_secs: f64,
}

/// One open-loop run: `n` arrivals at `rate` requests/sec, alternating
/// between two tenants, dispatching exactly when the plane says a batch is
/// due. The clock advances by a modelled batch service time (overhead +
/// the batch's modelled GPU latency) inside each dispatch, so recorded
/// latencies include queueing, batching *and* service.
fn open_loop(service: &FocusService, pool: &[QueryRequest], rate: f64, n: usize) -> RateRun {
    let clock = VirtualClock::new();
    let plane = RequestPlane::new(plane_config(), Arc::new(clock.clone()));
    let dispatch = |plane: &RequestPlane| {
        plane
            .dispatch_with(|batch| {
                let outcomes = service.serve(batch)?;
                let gpu_secs = outcomes
                    .iter()
                    .map(|o| o.latency_secs)
                    .fold(0.0f64, f64::max);
                clock.advance(BATCH_OVERHEAD_SECS + gpu_secs);
                Ok(outcomes)
            })
            .unwrap()
    };

    for i in 0..n {
        let due = i as f64 / rate;
        // Serve every batch that closes before this arrival.
        while let Some(at) = plane.next_dispatch_at() {
            if at > due {
                break;
            }
            if at > clock.now_secs() {
                clock.advance(at - clock.now_secs());
            }
            dispatch(&plane);
        }
        if due > clock.now_secs() {
            clock.advance(due - clock.now_secs());
        }
        let _ = plane.submit(TenantId((i % 2) as u32), pool[i % pool.len()].clone());
    }
    // Drain the leftovers on the plane's own schedule.
    while plane.queue_len() > 0 {
        if let Some(at) = plane.next_dispatch_at() {
            if at > clock.now_secs() {
                clock.advance(at - clock.now_secs());
            }
        }
        dispatch(&plane);
    }

    let stats = plane.serving_stats();
    assert!(stats.conserves(0), "request conservation: {stats:?}");
    RateRun {
        offered_per_sec: rate,
        submitted: stats.submitted,
        answered: stats.answered,
        expired: stats.expired,
        shed_fraction: stats.shed_fraction(),
        max_queue_len: stats.max_queue_len,
        p50_secs: stats.latency.p50(),
        p99_secs: stats.latency.p99(),
        p999_secs: stats.latency.p999(),
    }
}

fn bench_serving_plane(c: &mut Criterion) {
    let (service, dir, pool) = backend();

    let mut group = c.benchmark_group("serving_plane");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N_BELOW as u64));
    group.bench_function("open_loop_below_capacity", |b| {
        b.iter(|| open_loop(&service, &pool, RATE_BELOW, N_BELOW).answered)
    });
    group.throughput(Throughput::Elements(N_ABOVE as u64));
    group.bench_function("open_loop_above_capacity", |b| {
        b.iter(|| open_loop(&service, &pool, RATE_ABOVE, N_ABOVE).answered)
    });
    group.finish();

    write_trajectory(&service, &pool);
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs both rates once and writes `BENCH_serving.json` for future PRs to
/// compare against.
fn write_trajectory(service: &FocusService, pool: &[QueryRequest]) {
    let below = open_loop(service, pool, RATE_BELOW, N_BELOW);
    let above = open_loop(service, pool, RATE_ABOVE, N_ABOVE);

    // The plane's contract under overload: explicit sheds, bounded tails.
    assert!(below.shed_fraction < 0.05, "below capacity barely sheds");
    assert!(above.shed_fraction > 0.5, "overload sheds most submits");
    assert!(
        above.p999_secs < 1.0,
        "p999 stays inside the deadline under 6.7x overload"
    );

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"ingest_secs\": {INGEST_SECS}, \"queue_bound\": 64, \"batch_max_requests\": 16,\n"
    ));
    json.push_str("  \"rates\": {\n");
    for (name, run) in [("below_capacity", &below), ("above_capacity", &above)] {
        json.push_str(&format!(
            "    \"{name}\": {{ \"offered_per_sec\": {:.1}, \"submitted\": {}, \
             \"answered\": {}, \"expired\": {}, \"max_queue_len\": {}, \
             \"shed_fraction\": {:.4}, \"latency_p50_secs\": {:.6}, \
             \"latency_p99_secs\": {:.6}, \"latency_p999_secs\": {:.6} }}{}\n",
            run.offered_per_sec,
            run.submitted,
            run.answered,
            run.expired,
            run.max_queue_len,
            run.shed_fraction,
            run.p50_secs,
            run.p99_secs,
            run.p999_secs,
            if name == "below_capacity" { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_serving_plane);
criterion_main!(benches);
