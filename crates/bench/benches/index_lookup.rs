//! Criterion micro-benchmark: top-K index insertion and lookup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use focus_cnn::ModelSpec;
use focus_core::{IngestCnn, IngestEngine, IngestParams};
use focus_index::{QueryFilter, TopKIndex};
use focus_runtime::GpuMeter;
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn build_index() -> (TopKIndex, Vec<focus_video::ClassId>) {
    let dataset = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 240.0);
    let classes = dataset.dominant_classes(5);
    let engine = IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 20,
            ..IngestParams::default()
        },
    );
    let out = engine.ingest(&dataset, &GpuMeter::new());
    (out.index, classes)
}

fn bench_lookup(c: &mut Criterion) {
    let (index, classes) = build_index();
    let mut group = c.benchmark_group("topk_index");
    group.throughput(Throughput::Elements(classes.len() as u64));
    group.bench_function("lookup_dominant_classes", |b| {
        b.iter(|| {
            classes
                .iter()
                .map(|class| index.lookup(*class, &QueryFilter::any()).len())
                .sum::<usize>()
        })
    });
    group.bench_function("lookup_with_time_filter", |b| {
        let filter = QueryFilter::any().with_time_range(0.0, 60.0);
        b.iter(|| {
            classes
                .iter()
                .map(|class| index.lookup(*class, &filter).len())
                .sum::<usize>()
        })
    });
    group.bench_function("reinsert_all_records", |b| {
        let records: Vec<_> = index.clusters().cloned().collect();
        b.iter(|| {
            let mut fresh = TopKIndex::new();
            for r in &records {
                fresh.insert(r.clone());
            }
            fresh.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
