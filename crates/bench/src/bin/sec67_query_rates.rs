//! Regenerates the §6.7 analysis: Focus's applicability under extreme query
//! rates.
//!
//! * When **every** class of **every** video is queried, Ingest-all
//!   amortizes its cost across all queries; the fair comparison is total GPU
//!   cycles, and Focus remains ~4x cheaper on average (up to 6x).
//! * When **almost nothing** is queried, ingest work is wasted; Focus can
//!   run its whole pipeline lazily at query time and still answer ~22x
//!   faster than Query-all on average (up to 34x).

use focus_bench::{banner, fmt_factor, standard_config, TextTable};
use focus_core::ExperimentRunner;
use focus_video::profile::table1_profiles;

fn main() {
    banner(
        "§6.7: applicability under extreme query rates",
        "§6.7 of the paper",
    );
    let runner = ExperimentRunner::new(standard_config());
    let mut table = TextTable::new(vec![
        "stream",
        "all-queried: Focus cheaper than Ingest-all by",
        "rarely-queried: query-time-only Focus faster than Query-all by",
    ]);
    let mut sums = [0.0f64; 2];
    let mut counted = 0usize;
    for profile in table1_profiles() {
        match runner.run_stream(&profile) {
            Ok(report) => {
                table.row(vec![
                    report.stream.clone(),
                    fmt_factor(report.all_queried_cheaper_factor),
                    fmt_factor(report.query_time_only_faster_factor),
                ]);
                sums[0] += report.all_queried_cheaper_factor;
                sums[1] += report.query_time_only_faster_factor;
                counted += 1;
            }
            Err(err) => {
                table.row(vec![
                    profile.name.clone(),
                    format!("error: {err}"),
                    String::new(),
                ]);
            }
        }
    }
    table.print();
    if counted > 0 {
        println!();
        println!(
            "averages: all-queried {} cheaper; rarely-queried {} faster",
            fmt_factor(sums[0] / counted as f64),
            fmt_factor(sums[1] / counted as f64),
        );
    }
    println!();
    println!(
        "Paper: ~4x cheaper (up to 6x) in the all-queried extreme; ~22x faster \
         (up to 34x) in the rarely-queried extreme."
    );
}
