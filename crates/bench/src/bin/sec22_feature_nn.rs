//! Regenerates the §2.2.3 measurement: the fraction of objects whose nearest
//! neighbour in cheap-CNN feature space belongs to the same class.
//!
//! The paper reports this fraction to be above 99% for every stream, which
//! is what justifies clustering on cheap-CNN features.

use focus_bench::{banner, fmt_percent, TextTable};
use focus_cnn::{CheapCnn, Classifier};
use focus_video::profile::table1_profiles;
use focus_video::VideoDataset;

/// Number of objects sampled per stream for the O(n²) nearest-neighbour
/// scan.
const SAMPLE_OBJECTS: usize = 1500;

fn main() {
    banner(
        "§2.2.3: nearest-neighbour same-class fraction of cheap-CNN features",
        "the feature-vector robustness measurement in §2.2.3",
    );
    let model = CheapCnn::cheap_cnn_1();
    println!(
        "feature extractor: {} (ResNet18-class model)\n",
        model.name()
    );
    let mut table = TextTable::new(vec!["stream", "objects", "NN same-class fraction"]);
    let mut worst: f64 = 1.0;
    for profile in table1_profiles() {
        let name = profile.name.clone();
        let dataset = VideoDataset::generate(profile, 180.0);
        let objects: Vec<_> = dataset.objects().take(SAMPLE_OBJECTS).cloned().collect();
        if objects.len() < 10 {
            continue;
        }
        let features: Vec<_> = objects.iter().map(|o| model.extract_features(o)).collect();
        let mut same = 0usize;
        for (i, fi) in features.iter().enumerate() {
            let mut best = f32::MAX;
            let mut best_j = usize::MAX;
            for (j, fj) in features.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = fi.l2_distance_sq(fj);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            if objects[i].true_class == objects[best_j].true_class {
                same += 1;
            }
        }
        let fraction = same as f64 / objects.len() as f64;
        worst = worst.min(fraction);
        table.row(vec![name, objects.len().to_string(), fmt_percent(fraction)]);
    }
    table.print();
    println!();
    println!(
        "worst stream: {} (paper: over 99% in each video)",
        fmt_percent(worst)
    );
}
