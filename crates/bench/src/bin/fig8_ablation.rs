//! Regenerates Figure 8 of the paper: the contribution of each Focus
//! component (generic compressed model, per-stream specialization,
//! clustering) to the ingest-cost and query-latency improvements.

use focus_bench::{banner, fmt_factor, standard_config, TextTable};
use focus_core::{AblationMode, ExperimentRunner};
use focus_video::profile::representative_nine;

fn main() {
    banner(
        "Figure 8: effect of different Focus components",
        "Figure 8 and §6.3 of the paper",
    );
    let mut ingest_table = TextTable::new(vec![
        "stream",
        "compressed model",
        "+ specialized model",
        "+ clustering",
    ]);
    let mut query_table = ingest_table.clone();
    let mut sums = [[0.0f64; 3]; 2];
    let mut counted = 0usize;

    for profile in representative_nine() {
        let mut ingest_row = vec![profile.name.clone()];
        let mut query_row = vec![profile.name.clone()];
        let mut complete = true;
        for (i, mode) in AblationMode::all().into_iter().enumerate() {
            let config = focus_core::ExperimentConfig {
                ablation: mode,
                ..standard_config()
            };
            match ExperimentRunner::new(config).run_stream(&profile) {
                Ok(report) => {
                    ingest_row.push(fmt_factor(report.ingest_cheaper_factor));
                    query_row.push(fmt_factor(report.query_faster_factor));
                    sums[0][i] += report.ingest_cheaper_factor;
                    sums[1][i] += report.query_faster_factor;
                }
                Err(err) => {
                    ingest_row.push(format!("error: {err}"));
                    query_row.push("-".to_string());
                    complete = false;
                }
            }
        }
        if complete {
            counted += 1;
        }
        ingest_table.row(ingest_row);
        query_table.row(query_row);
    }

    println!("(a) ingest cost: cheaper than Ingest-all by");
    ingest_table.print();
    println!();
    println!("(b) query latency: faster than Query-all by");
    query_table.print();
    if counted > 0 {
        println!();
        println!(
            "averages over {counted} streams - ingest: {} / {} / {}   query: {} / {} / {}",
            fmt_factor(sums[0][0] / counted as f64),
            fmt_factor(sums[0][1] / counted as f64),
            fmt_factor(sums[0][2] / counted as f64),
            fmt_factor(sums[1][0] / counted as f64),
            fmt_factor(sums[1][1] / counted as f64),
            fmt_factor(sums[1][2] / counted as f64),
        );
    }
    println!();
    println!(
        "Paper behaviour: generic compressed models help but are not the major \
         source of improvement; specialization delivers most of the ingest \
         savings (7x-71x cheaper models) and speeds queries 5x-25x; clustering \
         adds up to 56x query speed-up at negligible ingest cost."
    );
}
