//! CI regression guard for the committed `BENCH_*.json` trajectories.
//!
//! Usage: `bench_guard <baseline.json> <fresh.json> [min_ratio]`
//!
//! Compares every throughput metric (`*_per_sec`) in the fresh run against
//! the committed baseline and exits non-zero if any rate fell below
//! `min_ratio` (default 0.7, i.e. a >30% regression) of its baseline. CI's
//! bench-smoke job stashes the committed files before running the benches
//! and then points this guard at the pair.

use std::process::ExitCode;

use focus_bench::guard::compare_rates;
use focus_bench::TextTable;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_guard <baseline.json> <fresh.json> [min_ratio]");
        return ExitCode::from(2);
    }
    let baseline_path = &args[1];
    let fresh_path = &args[2];
    let min_ratio: f64 = match args.get(3).map(|s| s.parse()) {
        None => 0.7,
        Some(Ok(r)) => r,
        Some(Err(_)) => {
            eprintln!("bench_guard: min_ratio must be a number, got `{}`", args[3]);
            return ExitCode::from(2);
        }
    };

    let read = |path: &str| -> Result<serde::Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        serde_json::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
    };
    let (baseline, fresh) = match (read(baseline_path), read(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let checks = match compare_rates(&baseline, &fresh) {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let mut table = TextTable::new(vec!["metric", "baseline", "fresh", "ratio", "verdict"]);
    let mut failures = 0usize;
    for check in &checks {
        let pass = check.passes(min_ratio);
        if !pass {
            failures += 1;
        }
        table.row(vec![
            check.path.clone(),
            format!("{:.1}", check.baseline),
            format!("{:.1}", check.fresh),
            format!("{:.2}", check.ratio()),
            if pass {
                "ok".to_string()
            } else {
                "REGRESSED".to_string()
            },
        ]);
    }
    println!("bench_guard: {fresh_path} vs {baseline_path} (min ratio {min_ratio:.2})");
    table.print();
    if failures > 0 {
        eprintln!(
            "bench_guard: {failures} of {} metrics regressed more than {:.0}% vs baseline",
            checks.len(),
            (1.0 - min_ratio) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_guard: all {} metrics within tolerance", checks.len());
    ExitCode::SUCCESS
}
