//! CI regression guard for the committed `BENCH_*.json` trajectories.
//!
//! Usage: `bench_guard <baseline.json> <fresh.json> [more pairs ...] [rate_tolerance]`
//!
//! Takes any number of baseline/fresh *pairs* in one invocation; when the
//! argument count is odd the trailing argument is the wall-clock rate
//! tolerance (default 0.7, i.e. a >30% regression fails). All pairs are
//! checked before the exit code is decided — **collect-then-fail** — so
//! one run reports every violating metric across every file instead of
//! stopping at the first bad pair.
//!
//! Direction-aware: every metric matched by the standard rule table
//! ([`focus_bench::guard::default_rules`]) is compared against the
//! committed baseline in its own direction with its own tolerance —
//! throughput (`*_per_sec`) and hit rates / recall / precision must not
//! fall; latencies, `segments_opened_per_query`, scatter width, wire bytes
//! and failover time must not rise. The rate tolerance applies to the
//! wall-clock metrics; deterministic workload metrics keep their built-in
//! tighter bounds. CI's bench-smoke job stashes the committed files before
//! running the benches and then points this guard at all pairs at once.

use std::process::ExitCode;

use focus_bench::guard::{compare_metrics, default_rules, MetricCheck, MetricDirection};
use focus_bench::TextTable;

fn read(path: &str) -> Result<serde::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // An odd argument count means the last argument is the tolerance.
    let rate_tolerance: f64 = if args.len() % 2 == 1 {
        let raw = args.pop().expect("odd length implies non-empty");
        match raw.parse() {
            Ok(r) => r,
            Err(_) => {
                eprintln!("bench_guard: rate_tolerance must be a number, got `{raw}`");
                return ExitCode::from(2);
            }
        }
    } else {
        0.7
    };
    if args.is_empty() {
        eprintln!(
            "usage: bench_guard <baseline.json> <fresh.json> [more pairs ...] [rate_tolerance]"
        );
        return ExitCode::from(2);
    }

    let rules = default_rules(rate_tolerance);
    // Collect-then-fail: every pair is fully checked and reported before
    // the verdict, so one CI run surfaces every violation at once.
    let mut violations: Vec<(String, MetricCheck)> = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    let mut total_checks = 0usize;
    for pair in args.chunks(2) {
        let (baseline_path, fresh_path) = (&pair[0], &pair[1]);
        let (baseline, fresh) = match (read(baseline_path), read(fresh_path)) {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_guard: {e}");
                errors.push(e);
                continue;
            }
        };
        let checks = match compare_metrics(&baseline, &fresh, &rules) {
            Ok(checks) => checks,
            Err(e) => {
                let e = format!("{fresh_path} vs {baseline_path}: {e}");
                eprintln!("bench_guard: {e}");
                errors.push(e);
                continue;
            }
        };

        let mut table = TextTable::new(vec![
            "metric", "dir", "baseline", "fresh", "ratio", "bound", "verdict",
        ]);
        for check in &checks {
            let pass = check.passes();
            let (dir, bound) = match check.direction {
                MetricDirection::HigherIsBetter => ("up", format!(">={:.2}", check.tolerance)),
                MetricDirection::LowerIsBetter => ("down", format!("<={:.2}", check.tolerance)),
            };
            table.row(vec![
                check.path.clone(),
                dir.to_string(),
                format!("{:.2}", check.baseline),
                format!("{:.2}", check.fresh),
                format!("{:.2}", check.ratio()),
                bound,
                if pass {
                    "ok".to_string()
                } else {
                    "REGRESSED".to_string()
                },
            ]);
            if !pass {
                violations.push((fresh_path.clone(), check.clone()));
            }
        }
        total_checks += checks.len();
        println!(
            "bench_guard: {fresh_path} vs {baseline_path} (rate tolerance {rate_tolerance:.2})"
        );
        table.print();
        println!();
    }

    if !violations.is_empty() || !errors.is_empty() {
        eprintln!(
            "bench_guard: {} of {total_checks} metrics regressed past their \
             direction-aware bound ({} pair errors):",
            violations.len(),
            errors.len()
        );
        for (file, check) in &violations {
            eprintln!(
                "  {file}: {} {:.2} -> {:.2} (ratio {:.2}, bound {:.2})",
                check.path,
                check.baseline,
                check.fresh,
                check.ratio(),
                check.tolerance
            );
        }
        for error in &errors {
            eprintln!("  error: {error}");
        }
        return ExitCode::FAILURE;
    }
    println!("bench_guard: all {total_checks} metrics within tolerance");
    ExitCode::SUCCESS
}
