//! CI regression guard for the committed `BENCH_*.json` trajectories.
//!
//! Usage: `bench_guard <baseline.json> <fresh.json> [rate_tolerance]`
//!
//! Direction-aware: every metric matched by the standard rule table
//! ([`focus_bench::guard::default_rules`]) is compared against the
//! committed baseline in its own direction with its own tolerance —
//! throughput (`*_per_sec`) and hit rates / recall / precision must not
//! fall, latencies and `segments_opened_per_query` must not rise. The
//! optional `rate_tolerance` (default 0.7, i.e. a >30% regression fails)
//! applies to the wall-clock metrics; deterministic workload metrics keep
//! their built-in tighter bounds. CI's bench-smoke job stashes the
//! committed files before running the benches and then points this guard
//! at each pair.

use std::process::ExitCode;

use focus_bench::guard::{compare_metrics, default_rules, MetricDirection};
use focus_bench::TextTable;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_guard <baseline.json> <fresh.json> [rate_tolerance]");
        return ExitCode::from(2);
    }
    let baseline_path = &args[1];
    let fresh_path = &args[2];
    let rate_tolerance: f64 = match args.get(3).map(|s| s.parse()) {
        None => 0.7,
        Some(Ok(r)) => r,
        Some(Err(_)) => {
            eprintln!(
                "bench_guard: rate_tolerance must be a number, got `{}`",
                args[3]
            );
            return ExitCode::from(2);
        }
    };

    let read = |path: &str| -> Result<serde::Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        serde_json::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
    };
    let (baseline, fresh) = match (read(baseline_path), read(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let rules = default_rules(rate_tolerance);
    let checks = match compare_metrics(&baseline, &fresh, &rules) {
        Ok(checks) => checks,
        Err(e) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let mut table = TextTable::new(vec![
        "metric", "dir", "baseline", "fresh", "ratio", "bound", "verdict",
    ]);
    let mut failures = 0usize;
    for check in &checks {
        let pass = check.passes();
        if !pass {
            failures += 1;
        }
        let (dir, bound) = match check.direction {
            MetricDirection::HigherIsBetter => ("up", format!(">={:.2}", check.tolerance)),
            MetricDirection::LowerIsBetter => ("down", format!("<={:.2}", check.tolerance)),
        };
        table.row(vec![
            check.path.clone(),
            dir.to_string(),
            format!("{:.2}", check.baseline),
            format!("{:.2}", check.fresh),
            format!("{:.2}", check.ratio()),
            bound,
            if pass {
                "ok".to_string()
            } else {
                "REGRESSED".to_string()
            },
        ]);
    }
    println!("bench_guard: {fresh_path} vs {baseline_path} (rate tolerance {rate_tolerance:.2})");
    table.print();
    if failures > 0 {
        eprintln!(
            "bench_guard: {failures} of {} metrics regressed past their direction-aware bound",
            checks.len()
        );
        return ExitCode::FAILURE;
    }
    println!("bench_guard: all {} metrics within tolerance", checks.len());
    ExitCode::SUCCESS
}
