//! Regenerates Table 1 of the paper: the video dataset characteristics.
//!
//! For each of the 13 built-in stream profiles the binary materializes a
//! recording and reports the measured characteristics (frames, objects,
//! distinct classes, empty-frame fraction, classes covering 95% of
//! objects), alongside the descriptive metadata the paper tabulates.

use focus_bench::{banner, experiment_duration_secs, fmt_percent, TextTable};
use focus_video::profile::table1_profiles;
use focus_video::VideoDataset;

fn main() {
    banner(
        "Table 1: video dataset characteristics",
        "Table 1 and §2.2 of the paper",
    );
    let duration = experiment_duration_secs();
    println!("recording length per stream: {duration} seconds\n");
    let mut table = TextTable::new(vec![
        "type",
        "name",
        "location",
        "frames",
        "objects",
        "tracks",
        "classes",
        "empty frames",
        "classes for 95%",
    ]);
    for profile in table1_profiles() {
        let domain = profile.domain.to_string();
        let location = profile.location.clone();
        let dataset = VideoDataset::generate(profile, duration);
        let stats = dataset.stats();
        table.row(vec![
            domain,
            stats.stream.clone(),
            location,
            stats.frames.to_string(),
            stats.objects.to_string(),
            stats.tracks.to_string(),
            stats.distinct_classes.to_string(),
            fmt_percent(stats.empty_frame_fraction),
            stats.classes_covering_95pct.to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "Paper context: 12-hour recordings at 30 fps; one-third to one-half of \
         frames have no moving objects (§2.2.1); 3%-10% of classes cover >=95% \
         of objects (§2.2.2)."
    );
}
