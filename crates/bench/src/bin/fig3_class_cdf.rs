//! Regenerates Figure 3 of the paper: the CDF of object-class frequency.
//!
//! For the six characterization streams the binary prints the cumulative
//! fraction of objects covered by the most frequent classes (the x-axis of
//! Figure 3 is the fraction of the 1,000-class label space, truncated at
//! 10%), plus the §2.2.2 headline numbers: how many classes cover 95% of
//! objects and the average pairwise Jaccard overlap of class sets.

use focus_bench::{banner, experiment_duration_secs, fmt_percent, TextTable};
use focus_video::dataset::average_pairwise_jaccard;
use focus_video::profile::characterization_six;
use focus_video::{VideoDataset, NUM_CLASSES};

fn main() {
    banner(
        "Figure 3: CDF of object-class frequency",
        "Figure 3 and §2.2.2 of the paper",
    );
    let duration = experiment_duration_secs();
    let datasets: Vec<VideoDataset> = characterization_six()
        .into_iter()
        .map(|p| VideoDataset::generate(p, duration))
        .collect();

    // CDF sampled at fixed fractions of the 1,000-class label space.
    let fractions = [0.005, 0.01, 0.02, 0.03, 0.05, 0.10];
    let mut table = TextTable::new(vec![
        "stream",
        "0.5% of classes",
        "1%",
        "2%",
        "3%",
        "5%",
        "10%",
        "classes for 95%",
    ]);
    for ds in &datasets {
        let cdf = ds.class_frequency_cdf();
        let mut row = vec![ds.profile.name.clone()];
        for fraction in fractions {
            let classes = ((NUM_CLASSES as f64) * fraction).round() as usize;
            let covered = if classes == 0 {
                0.0
            } else if classes > cdf.len() {
                1.0
            } else {
                cdf[classes - 1]
            };
            row.push(fmt_percent(covered));
        }
        row.push(ds.classes_covering(0.95).to_string());
        table.row(row);
    }
    table.print();

    println!();
    println!(
        "average pairwise Jaccard index of class sets: {:.2} (paper: 0.46)",
        average_pairwise_jaccard(&datasets)
    );
    println!("Paper headline: 3%-10% of the most frequent classes cover >=95% of objects.");
}
