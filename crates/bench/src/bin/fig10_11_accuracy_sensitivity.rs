//! Regenerates Figures 10 and 11 of the paper: sensitivity of the ingest
//! cost and query latency improvements to the accuracy target (95%, 97%,
//! 98%, 99% precision and recall).

use focus_bench::{banner, fmt_factor, standard_config, TextTable};
use focus_core::{AccuracyTarget, ExperimentRunner};
use focus_video::profile::representative_nine;

fn main() {
    banner(
        "Figures 10 & 11: sensitivity to the accuracy target",
        "Figures 10 and 11 / §6.5 of the paper",
    );
    let targets = [0.95f64, 0.97, 0.98, 0.99];
    let mut ingest_table = TextTable::new(vec!["stream", "95%", "97%", "98%", "99%"]);
    let mut query_table = ingest_table.clone();
    let mut sums = [[0.0f64; 4]; 2];
    let mut counts = [0usize; 4];

    for profile in representative_nine() {
        let mut ingest_row = vec![profile.name.clone()];
        let mut query_row = vec![profile.name.clone()];
        for (i, target) in targets.iter().enumerate() {
            let config = focus_core::ExperimentConfig {
                target: AccuracyTarget::both(*target),
                ..standard_config()
            };
            match ExperimentRunner::new(config).run_stream(&profile) {
                Ok(report) => {
                    ingest_row.push(fmt_factor(report.ingest_cheaper_factor));
                    query_row.push(fmt_factor(report.query_faster_factor));
                    sums[0][i] += report.ingest_cheaper_factor;
                    sums[1][i] += report.query_faster_factor;
                    counts[i] += 1;
                }
                Err(_) => {
                    ingest_row.push("no viable".to_string());
                    query_row.push("no viable".to_string());
                }
            }
        }
        ingest_table.row(ingest_row);
        query_table.row(query_row);
    }

    println!("Figure 10 - ingest cheaper than Ingest-all by:");
    ingest_table.print();
    println!();
    println!("Figure 11 - query faster than Query-all by:");
    query_table.print();
    println!();
    let fmt_avg = |metric: usize| -> String {
        (0..4)
            .map(|i| {
                if counts[i] == 0 {
                    "-".to_string()
                } else {
                    fmt_factor(sums[metric][i] / counts[i] as f64)
                }
            })
            .collect::<Vec<_>>()
            .join(" / ")
    };
    println!(
        "averages at 95/97/98/99%: ingest {}   query {}",
        fmt_avg(0),
        fmt_avg(1)
    );
    println!();
    println!(
        "Paper behaviour: the ingest cost stays roughly constant (62x-64x \
         cheaper) because the same specialized model is used, while the query \
         latency improvement shrinks (37x -> 15x -> 12x -> 8x) because higher \
         targets require keeping more top-K results."
    );
}
