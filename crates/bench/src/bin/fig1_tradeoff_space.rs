//! Regenerates Figure 1 of the paper: the ingest-cost / query-latency
//! trade-off space for the `auburn_c` stream.
//!
//! The figure compares the three Focus policies (Opt-Ingest, Balance,
//! Opt-Query) against the Ingest-all and Query-all baselines. Each Focus
//! point is annotated `(I, Q)`: its ingest cost is I× cheaper than
//! Ingest-all and its query latency is Q× faster than Query-all.

use focus_bench::{banner, fmt_factor, standard_config, TextTable};
use focus_core::{ExperimentRunner, TradeoffPolicy};
use focus_video::profile::profile_by_name;

fn main() {
    banner(
        "Figure 1: ingest cost vs query latency trade-off space (auburn_c)",
        "Figure 1 of the paper",
    );
    let profile = profile_by_name("auburn_c").expect("auburn_c profile exists");
    let mut table = TextTable::new(vec![
        "configuration",
        "normalized ingest cost",
        "normalized query latency",
        "ingest cheaper by (I)",
        "query faster by (Q)",
        "precision",
        "recall",
    ]);
    table.row(vec![
        "Ingest-all".to_string(),
        "1.0000".to_string(),
        "0.0000".to_string(),
        "1x".to_string(),
        "inf".to_string(),
        "1.00".to_string(),
        "1.00".to_string(),
    ]);
    table.row(vec![
        "Query-all".to_string(),
        "0.0000".to_string(),
        "1.0000".to_string(),
        "inf".to_string(),
        "1x".to_string(),
        "1.00".to_string(),
        "1.00".to_string(),
    ]);
    for policy in TradeoffPolicy::all() {
        let config = focus_core::ExperimentConfig {
            policy,
            ..standard_config()
        };
        let report = ExperimentRunner::new(config)
            .run_stream(&profile)
            .expect("a viable configuration exists for auburn_c");
        table.row(vec![
            policy.name().to_string(),
            format!("{:.4}", 1.0 / report.ingest_cheaper_factor),
            format!("{:.4}", 1.0 / report.query_faster_factor),
            fmt_factor(report.ingest_cheaper_factor),
            fmt_factor(report.query_faster_factor),
            format!("{:.2}", report.mean_precision),
            format!("{:.2}", report.mean_recall),
        ]);
    }
    table.print();
    println!();
    println!(
        "Paper annotations for auburn_c: Opt-Ingest (I=141x, Q=46x), \
         Balance (I=86x, Q=56x), Opt-Query (I=26x, Q=63x), all at >=95% \
         precision and recall."
    );
}
