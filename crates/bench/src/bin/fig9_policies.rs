//! Regenerates Figure 9 of the paper: the (I, Q) factors achieved by the
//! Focus-Opt-Ingest and Focus-Opt-Query policies for the representative
//! streams.

use focus_bench::{banner, fmt_factor, standard_config, TextTable};
use focus_core::{ExperimentRunner, TradeoffPolicy};
use focus_video::profile::representative_nine;

fn main() {
    banner(
        "Figure 9: ingest-cost vs query-latency trade-off per stream",
        "Figure 9 and §6.4 of the paper",
    );
    let mut table = TextTable::new(vec![
        "stream",
        "Opt-I: ingest cheaper by",
        "Opt-I: query faster by",
        "Opt-Q: ingest cheaper by",
        "Opt-Q: query faster by",
    ]);
    let mut sums = [0.0f64; 4];
    let mut counted = 0usize;
    for profile in representative_nine() {
        let mut row = vec![profile.name.clone()];
        let mut values = Vec::new();
        for policy in [TradeoffPolicy::OptIngest, TradeoffPolicy::OptQuery] {
            let config = focus_core::ExperimentConfig {
                policy,
                ..standard_config()
            };
            match ExperimentRunner::new(config).run_stream(&profile) {
                Ok(report) => {
                    values.push(report.ingest_cheaper_factor);
                    values.push(report.query_faster_factor);
                }
                Err(_) => {
                    values.push(f64::NAN);
                    values.push(f64::NAN);
                }
            }
        }
        for v in &values {
            row.push(if v.is_nan() {
                "-".to_string()
            } else {
                fmt_factor(*v)
            });
        }
        if values.iter().all(|v| !v.is_nan()) {
            for (s, v) in sums.iter_mut().zip(values.iter()) {
                *s += v;
            }
            counted += 1;
        }
        table.row(row);
    }
    table.print();
    if counted > 0 {
        println!();
        println!(
            "averages: Opt-Ingest (I={}, Q={})   Opt-Query (I={}, Q={})",
            fmt_factor(sums[0] / counted as f64),
            fmt_factor(sums[1] / counted as f64),
            fmt_factor(sums[2] / counted as f64),
            fmt_factor(sums[3] / counted as f64),
        );
    }
    println!();
    println!(
        "Paper averages: Opt-Ingest achieves 95x cheaper ingest with 35x faster \
         queries; Opt-Query achieves 49x faster queries with 15x cheaper ingest."
    );
}
