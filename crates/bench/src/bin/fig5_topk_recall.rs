//! Regenerates Figure 5 of the paper: recall as a function of K for three
//! cheap CNNs on the `lausanne` stream.
//!
//! Recall here is the probability that the ground-truth CNN's top-most
//! class for an object appears within the cheap CNN's top-K results — the
//! quantity that determines how large the top-K ingest index must be.

use focus_bench::{banner, experiment_duration_secs, fmt_percent, TextTable};
use focus_cnn::{Classifier, GroundTruthCnn, ModelZoo};
use focus_video::profile::profile_by_name;
use focus_video::VideoDataset;

fn main() {
    banner(
        "Figure 5: effect of K on recall for three cheap CNNs (lausanne)",
        "Figure 5 of the paper",
    );
    let dataset = VideoDataset::generate(
        profile_by_name("lausanne").expect("lausanne profile exists"),
        experiment_duration_secs(),
    );
    let gt = GroundTruthCnn::resnet152();
    let objects: Vec<_> = dataset.objects().cloned().collect();
    let gt_labels: Vec<_> = objects.iter().map(|o| gt.classify_top1(o)).collect();
    println!("objects evaluated: {}\n", objects.len());

    let ks = [10usize, 20, 60, 100, 200];
    let mut table = TextTable::new(vec![
        "model (cheaper than GT by)",
        "K=10",
        "K=20",
        "K=60",
        "K=100",
        "K=200",
    ]);
    for model in ModelZoo::new().figure5_models() {
        let mut row = vec![format!(
            "{} ({:.0}x)",
            model.name(),
            model.cheapness_vs_gt()
        )];
        for k in ks {
            let hits = objects
                .iter()
                .zip(gt_labels.iter())
                .filter(|(obj, label)| model.classify_top_k(obj, k).contains_in_top(**label, k))
                .count();
            row.push(fmt_percent(hits as f64 / objects.len() as f64));
        }
        table.row(row);
    }
    table.print();
    println!();
    println!(
        "Paper anchors: the 7x/28x/58x-cheaper models reach ~90% recall at \
         K >= 60, K >= 100 and K >= 200 respectively."
    );
}
