//! Regenerates Figure 7 of the paper: end-to-end ingest-cost and
//! query-latency improvements of Focus (Balance policy) over the Ingest-all
//! and Query-all baselines for all 13 streams.

use focus_bench::{banner, fmt_factor, fmt_percent, standard_config, TextTable};
use focus_core::{AggregateFactors, ExperimentRunner};
use focus_video::profile::table1_profiles;

fn main() {
    banner(
        "Figure 7: end-to-end ingest cost and query latency vs the baselines",
        "Figure 7 and §6.2 of the paper",
    );
    let runner = ExperimentRunner::new(standard_config());
    let mut table = TextTable::new(vec![
        "stream",
        "model chosen",
        "K",
        "objects",
        "clusters",
        "ingest cheaper by",
        "query faster by",
        "precision",
        "recall",
    ]);
    let mut reports = Vec::new();
    for profile in table1_profiles() {
        match runner.run_stream(&profile) {
            Ok(report) => {
                table.row(vec![
                    report.stream.clone(),
                    report.chosen_model.clone(),
                    report.chosen_k.to_string(),
                    report.objects.to_string(),
                    report.clusters.to_string(),
                    fmt_factor(report.ingest_cheaper_factor),
                    fmt_factor(report.query_faster_factor),
                    fmt_percent(report.mean_precision),
                    fmt_percent(report.mean_recall),
                ]);
                reports.push(report);
            }
            Err(err) => {
                table.row(vec![profile.name.clone(), format!("error: {err}")]);
            }
        }
    }
    table.print();
    let agg = AggregateFactors::from_reports(&reports);
    println!();
    println!(
        "average: ingest {} cheaper (max {}), queries {} faster (max {}), \
         precision {}, recall {}",
        fmt_factor(agg.mean_ingest_cheaper),
        fmt_factor(agg.max_ingest_cheaper),
        fmt_factor(agg.mean_query_faster),
        fmt_factor(agg.max_query_faster),
        fmt_percent(agg.mean_precision),
        fmt_percent(agg.mean_recall),
    );
    println!();
    println!(
        "Paper headline: on average 58x (up to 98x) cheaper than Ingest-all and \
         37x (up to 57x) faster than Query-all, at >=95% precision and recall."
    );
}
