//! Regenerates Figure 6 of the paper: the viable configurations of the
//! parameter sweep and their Pareto boundary for `auburn_c`.
//!
//! Every point is a (cheap CNN, K, T) configuration that meets the accuracy
//! targets; the Pareto boundary is the subset no other point improves on in
//! both ingest cost and query latency. The three policy picks are marked.

use focus_bench::{banner, standard_config, TextTable};
use focus_cnn::GroundTruthCnn;
use focus_core::{ExperimentRunner, TradeoffPolicy};
use focus_video::profile::profile_by_name;

fn main() {
    banner(
        "Figure 6: parameter selection and the Pareto boundary (auburn_c)",
        "Figure 6 of the paper",
    );
    let profile = profile_by_name("auburn_c").expect("auburn_c profile exists");
    let runner = ExperimentRunner::new(standard_config());
    let dataset = runner.dataset_for(&profile);
    let gt = GroundTruthCnn::resnet152();
    let (selection, _) = runner.select_parameters(&dataset, &gt);

    println!(
        "evaluated configurations: {}   viable (meet 95%/95%): {}   on Pareto boundary: {}\n",
        selection.evaluated.len(),
        selection.viable.len(),
        selection.pareto.len()
    );

    let chosen: Vec<(TradeoffPolicy, _)> = TradeoffPolicy::all()
        .into_iter()
        .filter_map(|p| selection.choose(p).map(|c| (p, c.point)))
        .collect();

    let mut table = TextTable::new(vec![
        "model",
        "K",
        "T",
        "norm. ingest cost",
        "norm. query latency",
        "precision",
        "recall",
        "pareto",
        "chosen by",
    ]);
    for point in &selection.viable {
        let on_pareto = selection.pareto.iter().any(|p| {
            p.model == point.model && p.k == point.k && (p.threshold - point.threshold).abs() < 1e-6
        });
        let picked: Vec<&str> = chosen
            .iter()
            .filter(|(_, c)| {
                c.model == point.model
                    && c.k == point.k
                    && (c.threshold - point.threshold).abs() < 1e-6
            })
            .map(|(p, _)| p.name())
            .collect();
        table.row(vec![
            point.model.display_name(),
            point.k.to_string(),
            format!("{:.2}", point.threshold),
            format!("{:.4}", point.ingest_cost_norm),
            format!("{:.4}", point.query_latency_norm),
            format!("{:.3}", point.precision),
            format!("{:.3}", point.recall),
            if on_pareto {
                "*".to_string()
            } else {
                String::new()
            },
            picked.join(", "),
        ]);
    }
    table.print();
    println!();
    println!(
        "Paper behaviour: the Balance policy picks the Pareto point minimizing \
         the sum of normalized ingest cost and query latency; Opt-Ingest and \
         Opt-Query pick the endpoints of the boundary."
    );
}
