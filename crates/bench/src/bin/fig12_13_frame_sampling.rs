//! Regenerates Figures 12 and 13 of the paper: sensitivity of the ingest
//! cost and query latency improvements to the frame sampling rate (30, 10,
//! 5 and 1 fps).

use focus_bench::{banner, fmt_factor, standard_config, TextTable};
use focus_core::ExperimentRunner;
use focus_video::profile::representative_nine;

fn main() {
    banner(
        "Figures 12 & 13: sensitivity to frame sampling",
        "Figures 12 and 13 / §6.6 of the paper",
    );
    let rates = [30u32, 10, 5, 1];
    let mut ingest_table = TextTable::new(vec!["stream", "30 fps", "10 fps", "5 fps", "1 fps"]);
    let mut query_table = ingest_table.clone();
    let mut sums = [[0.0f64; 4]; 2];
    let mut counts = [0usize; 4];

    for profile in representative_nine() {
        let mut ingest_row = vec![profile.name.clone()];
        let mut query_row = vec![profile.name.clone()];
        for (i, fps) in rates.iter().enumerate() {
            let config = focus_core::ExperimentConfig {
                frame_rate: Some(*fps),
                ..standard_config()
            };
            match ExperimentRunner::new(config).run_stream(&profile) {
                Ok(report) => {
                    ingest_row.push(fmt_factor(report.ingest_cheaper_factor));
                    query_row.push(fmt_factor(report.query_faster_factor));
                    sums[0][i] += report.ingest_cheaper_factor;
                    sums[1][i] += report.query_faster_factor;
                    counts[i] += 1;
                }
                Err(_) => {
                    ingest_row.push("no viable".to_string());
                    query_row.push("no viable".to_string());
                }
            }
        }
        ingest_table.row(ingest_row);
        query_table.row(query_row);
    }

    println!("Figure 12 - ingest cheaper than Ingest-all by:");
    ingest_table.print();
    println!();
    println!("Figure 13 - query faster than Query-all by:");
    query_table.print();
    println!();
    let fmt_avg = |metric: usize| -> String {
        (0..4)
            .map(|i| {
                if counts[i] == 0 {
                    "-".to_string()
                } else {
                    fmt_factor(sums[metric][i] / counts[i] as f64)
                }
            })
            .collect::<Vec<_>>()
            .join(" / ")
    };
    println!(
        "averages at 30/10/5/1 fps: ingest {}   query {}",
        fmt_avg(0),
        fmt_avg(1)
    );
    println!();
    println!(
        "Paper behaviour: the ingest-cost saving is roughly constant across \
         frame rates (58x-64x), while the query-latency gain degrades at lower \
         frame rates because there is less redundancy for clustering to \
         eliminate — but remains an order of magnitude even at 1 fps."
    );
}
