//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/`; this library holds the pieces they share: the standard
//! experiment configuration, simple aligned-table printing, and environment
//! overrides so the same binaries can be run at quick-look or full scale.

use focus_core::{AccuracyTarget, ExperimentConfig, SweepSpace, TradeoffPolicy};
use focus_runtime::GpuClusterSpec;

/// Environment variable overriding the per-stream recording length, in
/// seconds.
pub const DURATION_ENV: &str = "FOCUS_DURATION_SECS";
/// Environment variable overriding the parameter-selection sample length, in
/// seconds.
pub const SAMPLE_ENV: &str = "FOCUS_SAMPLE_SECS";

/// Recording length (seconds) analysed per stream by the figure binaries.
///
/// The paper records 12 hours per stream; the default here is a 6-minute
/// slice, which preserves the distributional properties the techniques
/// depend on (§2.2) while keeping the whole harness runnable in minutes.
/// Override with `FOCUS_DURATION_SECS`.
pub fn experiment_duration_secs() -> f64 {
    std::env::var(DURATION_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(360.0)
}

/// Parameter-selection sample length in seconds (override with
/// `FOCUS_SAMPLE_SECS`).
pub fn sample_duration_secs() -> f64 {
    std::env::var(SAMPLE_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(90.0)
}

/// The standard experiment configuration used by the figure binaries.
pub fn standard_config() -> ExperimentConfig {
    ExperimentConfig {
        duration_secs: experiment_duration_secs(),
        sample_secs: sample_duration_secs(),
        target: AccuracyTarget::default(),
        policy: TradeoffPolicy::Balance,
        gpus: GpuClusterSpec::default(),
        sweep: SweepSpace::full(),
        query_classes: 5,
        ..ExperimentConfig::default()
    }
}

/// A plain-text aligned table for terminal output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are padded with empty strings.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a speed-up / cheaper-by factor the way the paper annotates them
/// (e.g. `58x`).
pub fn fmt_factor(factor: f64) -> String {
    if factor.is_infinite() {
        "inf".to_string()
    } else if factor >= 10.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Prints a section banner for a figure/table binary.
pub fn banner(title: &str, paper_reference: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_reference})");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_env_overrides_default() {
        // Not setting the env var yields the default.
        std::env::remove_var(DURATION_ENV);
        assert_eq!(experiment_duration_secs(), 360.0);
        std::env::set_var(DURATION_ENV, "120");
        assert_eq!(experiment_duration_secs(), 120.0);
        std::env::set_var(DURATION_ENV, "not a number");
        assert_eq!(experiment_duration_secs(), 360.0);
        std::env::remove_var(DURATION_ENV);
    }

    #[test]
    fn standard_config_uses_paper_defaults() {
        std::env::remove_var(DURATION_ENV);
        std::env::remove_var(SAMPLE_ENV);
        let cfg = standard_config();
        assert_eq!(cfg.target.precision, 0.95);
        assert_eq!(cfg.policy, TradeoffPolicy::Balance);
        assert_eq!(cfg.gpus.num_gpus, 10);
        assert_eq!(cfg.query_classes, 5);
    }

    #[test]
    fn text_table_alignment() {
        let mut table = TextTable::new(vec!["stream", "factor"]);
        table.row(vec!["auburn_c", "86x"]);
        table.row(vec!["cnn", "64x"]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("stream"));
        assert!(lines[2].contains("auburn_c"));
        // All lines are padded to the same width.
        assert_eq!(lines[2].len(), lines[0].len());
        assert_eq!(lines[3].len(), lines[1].len());
    }

    #[test]
    fn row_padding_fills_missing_cells() {
        let mut table = TextTable::new(vec!["a", "b", "c"]);
        table.row(vec!["1"]);
        assert_eq!(table.rows[0].len(), 3);
    }

    #[test]
    fn factor_and_percent_formatting() {
        assert_eq!(fmt_factor(58.4), "58x");
        assert_eq!(fmt_factor(3.24), "3.2x");
        assert_eq!(fmt_factor(f64::INFINITY), "inf");
        assert_eq!(fmt_percent(0.954), "95.4%");
    }
}
