//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/`; this library holds the pieces they share: the standard
//! experiment configuration, simple aligned-table printing, and environment
//! overrides so the same binaries can be run at quick-look or full scale.

use focus_core::{AccuracyTarget, ExperimentConfig, SweepSpace, TradeoffPolicy};
use focus_runtime::GpuClusterSpec;

/// Environment variable overriding the per-stream recording length, in
/// seconds.
pub const DURATION_ENV: &str = "FOCUS_DURATION_SECS";
/// Environment variable overriding the parameter-selection sample length, in
/// seconds.
pub const SAMPLE_ENV: &str = "FOCUS_SAMPLE_SECS";

/// Recording length (seconds) analysed per stream by the figure binaries.
///
/// The paper records 12 hours per stream; the default here is a 6-minute
/// slice, which preserves the distributional properties the techniques
/// depend on (§2.2) while keeping the whole harness runnable in minutes.
/// Override with `FOCUS_DURATION_SECS`.
pub fn experiment_duration_secs() -> f64 {
    std::env::var(DURATION_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(360.0)
}

/// Parameter-selection sample length in seconds (override with
/// `FOCUS_SAMPLE_SECS`).
pub fn sample_duration_secs() -> f64 {
    std::env::var(SAMPLE_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(90.0)
}

/// Environment variable that switches the Criterion benches to their
/// reduced CI smoke workload (any non-empty value other than `0`).
pub const BENCH_SMOKE_ENV: &str = "FOCUS_BENCH_SMOKE";

/// Whether the benches should run their reduced CI smoke workload.
pub fn bench_smoke() -> bool {
    std::env::var(BENCH_SMOKE_ENV)
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The per-stream workload length a bench should use: `full_secs` normally,
/// half of it under [`bench_smoke`]. Throughput metrics (frames/sec,
/// queries/sec) are insensitive to the cut because per-frame and per-query
/// work dominates, which is what lets CI compare the smoke run against the
/// committed full-workload baselines with a single tolerance. (A deeper cut
/// starts shifting per-query characteristics — candidate-set sizes, batch
/// amortization — and produces false regressions.)
pub fn bench_workload_secs(full_secs: f64) -> f64 {
    if bench_smoke() {
        full_secs / 2.0
    } else {
        full_secs
    }
}

/// The standard experiment configuration used by the figure binaries.
pub fn standard_config() -> ExperimentConfig {
    ExperimentConfig {
        duration_secs: experiment_duration_secs(),
        sample_secs: sample_duration_secs(),
        target: AccuracyTarget::default(),
        policy: TradeoffPolicy::Balance,
        gpus: GpuClusterSpec::default(),
        sweep: SweepSpace::full(),
        query_classes: 5,
        ..ExperimentConfig::default()
    }
}

/// A plain-text aligned table for terminal output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are padded with empty strings.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a speed-up / cheaper-by factor the way the paper annotates them
/// (e.g. `58x`).
pub fn fmt_factor(factor: f64) -> String {
    if factor.is_infinite() {
        "inf".to_string()
    } else if factor >= 10.0 {
        format!("{factor:.0}x")
    } else {
        format!("{factor:.1}x")
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Prints a section banner for a figure/table binary.
pub fn banner(title: &str, paper_reference: &str) {
    println!("==============================================================");
    println!("{title}");
    println!("(reproduces {paper_reference})");
    println!("==============================================================");
}

/// Regression guarding for the committed `BENCH_*.json` trajectory files.
///
/// Two layers:
///
/// * [`compare_rates`](guard::compare_rates) — the original
///   throughput-only comparison: every key ending in `_per_sec` must hold
///   a minimum ratio of its baseline.
/// * [`compare_metrics`](guard::compare_metrics) — **direction-aware**
///   guarding: a rule table ([`MetricRule`](guard::MetricRule)) maps key
///   patterns to a direction (higher-is-better
///   throughput/hit-rates/accuracy vs lower-is-better latency/opens) and
///   a per-metric tolerance, so a cache whose hit rate collapses or a
///   query path that starts opening twice the segments fails CI even
///   though no `*_per_sec` moved.
///   [`default_rules`](guard::default_rules) is the table the
///   `bench_guard` binary ships.
///
/// Tolerances differ by metric class because their noise differs:
/// wall-clock rates and latencies vary with runner hardware (wide
/// tolerance), while hit rates / recalls / opens-per-query are
/// deterministic functions of the workload (tight tolerance, with slack
/// only for the smoke run's halved workload).
pub mod guard {
    use serde::Value;

    /// Which way a metric is allowed to move.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum MetricDirection {
        /// Bigger is better (throughput, hit rates, recall): the guard
        /// fails when `fresh / baseline` falls below the tolerance.
        HigherIsBetter,
        /// Smaller is better (latency, segments opened): the guard fails
        /// when `fresh / baseline` rises above the tolerance.
        LowerIsBetter,
    }

    /// One pattern → (direction, tolerance) rule. Patterns match by
    /// substring on the metric's key (the last path component), first
    /// match wins.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MetricRule {
        /// Substring of the metric key this rule applies to.
        pub pattern: &'static str,
        /// Which way the metric is allowed to move.
        pub direction: MetricDirection,
        /// Ratio bound: minimum `fresh/baseline` for higher-is-better,
        /// maximum for lower-is-better.
        pub tolerance: f64,
    }

    /// The standard rule table. `rate_tolerance` is the wall-clock
    /// tolerance (e.g. `0.7` = fail on a >30% throughput regression);
    /// deterministic workload metrics get tighter bounds with slack for
    /// the smoke run's halved workloads.
    pub fn default_rules(rate_tolerance: f64) -> Vec<MetricRule> {
        vec![
            MetricRule {
                pattern: "_per_sec",
                direction: MetricDirection::HigherIsBetter,
                tolerance: rate_tolerance,
            },
            MetricRule {
                pattern: "_hit_rate",
                direction: MetricDirection::HigherIsBetter,
                // Hit rates are deterministic per workload but shift a
                // little under the smoke run's halved workloads (measured
                // ≈0.92 of full scale); a broken cache reads ≈0 and still
                // fails loudly.
                tolerance: 0.80,
            },
            MetricRule {
                // Anytime-query cost-to-first metrics
                // (`time_to_first_result_secs`,
                // `inferences_to_first_result`): the whole point of the
                // anytime path is reaching the first distinct result
                // cheaply, so creeping back toward exhaustive cost must
                // fail even while total throughput holds.
                pattern: "_to_first_result",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Anytime inference budgets to a recall level
                // (`inferences_to_90_recall`). Must sit before the
                // `_recall` rule: that one is higher-is-better and would
                // otherwise claim the key by substring.
                pattern: "inferences_to_",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Total GT inferences a planned path spends
                // (`inferences_sketch_planned_total`,
                // `inferences_class_only_total`): lower-is-better cost
                // counters. Must sit after `_to_first_result` and
                // `inferences_to_` so the anytime cost-to-X keys keep
                // their dedicated rules.
                pattern: "inferences_",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Fraction of class-matched candidates the track-sketch
                // intersection drops before GT verification — the
                // track-query planner's whole advantage. Deterministic per
                // workload; the smoke run's halved archive shifts the mix
                // of tracks a little.
                pattern: "candidates_pruned",
                direction: MetricDirection::HigherIsBetter,
                tolerance: 0.80,
            },
            MetricRule {
                // Distinct results surfaced per fresh GT inference — the
                // anytime sampler's efficiency. Deterministic per workload;
                // the smoke run's halved archive shifts it a little.
                pattern: "results_per_inference",
                direction: MetricDirection::HigherIsBetter,
                tolerance: 0.80,
            },
            MetricRule {
                pattern: "_recall",
                direction: MetricDirection::HigherIsBetter,
                tolerance: 0.95,
            },
            MetricRule {
                pattern: "_precision",
                direction: MetricDirection::HigherIsBetter,
                tolerance: 0.95,
            },
            MetricRule {
                pattern: "segments_opened_per_query",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Block fetches hitting disk (binary segments read
                // per-block): a footer regression that starts pulling
                // whole files again shows up here first.
                pattern: "blocks_read",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Cold-path read volume is deterministic per workload; the
                // smoke run's halved workload only ever shrinks it.
                pattern: "bytes_read",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Cost-share metrics (e.g. the adaptive service's
                // audit+re-selection GPU bill as a share of GT-ingest-all)
                // are deterministic per workload: a controller that starts
                // sweeping more often must fail here even while every
                // throughput metric stays green.
                pattern: "gpu_share",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.15,
            },
            MetricRule {
                // Tail-latency percentiles from the serving plane's
                // log-bucketed histograms (latency_p50_secs /
                // latency_p99_secs / latency_p999_secs). The bench runs on
                // a virtual clock, so the values are deterministic; the
                // tolerance is ~one histogram bucket (G = 2^(1/4) ≈ 1.19).
                pattern: "latency_p",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Fraction of submits the request plane shed. Deterministic
                // per workload on the virtual clock: a plane that starts
                // over-shedding (admission or queue-bound regression) fails
                // here even while every latency metric improves.
                pattern: "shed_fraction",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.15,
            },
            MetricRule {
                pattern: "latency_secs",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.0 / rate_tolerance,
            },
            MetricRule {
                // Mean shards contacted per scattered query batch. Exact
                // per placement/filter mix (simulated transport): a fleet
                // that quietly degrades to broadcast fails here.
                pattern: "scatter_width",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.05,
            },
            MetricRule {
                // Simulated bytes over the wire per query — deterministic;
                // the smoke run's halved workload only ever shrinks it.
                pattern: "wire_bytes",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
            MetricRule {
                // Virtual-clock seconds from node loss to the first
                // gathered answer (detection + replay + manifest round +
                // scatter).
                pattern: "failover_to_first_answer",
                direction: MetricDirection::LowerIsBetter,
                tolerance: 1.25,
            },
        ]
    }

    /// One direction-aware metric compared between baseline and fresh run.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MetricCheck {
        /// Dotted JSON path of the metric.
        pub path: String,
        /// The committed baseline value.
        pub baseline: f64,
        /// The freshly measured value.
        pub fresh: f64,
        /// Direction the metric is allowed to move.
        pub direction: MetricDirection,
        /// The rule's ratio bound.
        pub tolerance: f64,
    }

    impl MetricCheck {
        /// fresh / baseline (infinite when the baseline is zero; a zero
        /// baseline never blocks for higher-is-better and always compares
        /// against zero for lower-is-better).
        pub fn ratio(&self) -> f64 {
            if self.baseline == 0.0 {
                if self.fresh == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                self.fresh / self.baseline
            }
        }

        /// Whether the fresh value is within tolerance of baseline, in
        /// the metric's allowed direction.
        pub fn passes(&self) -> bool {
            match self.direction {
                MetricDirection::HigherIsBetter => self.ratio() >= self.tolerance,
                MetricDirection::LowerIsBetter => self.ratio() <= self.tolerance,
            }
        }
    }

    /// The first rule whose pattern occurs in `key`.
    fn rule_for<'r>(key: &str, rules: &'r [MetricRule]) -> Option<&'r MetricRule> {
        rules.iter().find(|r| key.contains(r.pattern))
    }

    /// Recursively collects `(dotted-path, key, value)` for every numeric
    /// field matched by some rule.
    fn collect_ruled(
        value: &Value,
        prefix: &str,
        rules: &[MetricRule],
        out: &mut Vec<(String, String, f64)>,
    ) {
        match value {
            Value::Object(entries) => {
                for (key, child) in entries {
                    let path = if prefix.is_empty() {
                        key.clone()
                    } else {
                        format!("{prefix}.{key}")
                    };
                    let numeric = match child {
                        Value::Float(f) => Some(*f),
                        Value::UInt(n) => Some(*n as f64),
                        Value::Int(n) => Some(*n as f64),
                        _ => None,
                    };
                    match numeric {
                        Some(v) if rule_for(key, rules).is_some() => {
                            out.push((path, key.clone(), v));
                        }
                        Some(_) => {}
                        None => collect_ruled(child, &path, rules, out),
                    }
                }
            }
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    collect_ruled(item, &format!("{prefix}[{i}]"), rules, out);
                }
            }
            _ => {}
        }
    }

    /// Pairs every rule-matched baseline metric with the fresh run's
    /// value at the same path, attaching each metric's direction and
    /// tolerance. A baseline metric missing from the fresh run is an
    /// error (a silently dropped metric must not pass the guard); fresh
    /// metrics with no baseline are ignored (new benches need a first
    /// commit to become baselines).
    pub fn compare_metrics(
        baseline: &Value,
        fresh: &Value,
        rules: &[MetricRule],
    ) -> Result<Vec<MetricCheck>, String> {
        let mut baseline_metrics = Vec::new();
        collect_ruled(baseline, "", rules, &mut baseline_metrics);
        if baseline_metrics.is_empty() {
            return Err("baseline contains no guarded metrics".to_string());
        }
        let mut fresh_metrics = Vec::new();
        collect_ruled(fresh, "", rules, &mut fresh_metrics);
        let mut checks = Vec::with_capacity(baseline_metrics.len());
        for (path, key, base) in baseline_metrics {
            let Some((_, _, measured)) = fresh_metrics.iter().find(|(p, _, _)| *p == path) else {
                return Err(format!("fresh run is missing baseline metric `{path}`"));
            };
            let rule = rule_for(&key, rules).expect("collected metrics always have a rule");
            checks.push(MetricCheck {
                path,
                baseline: base,
                fresh: *measured,
                direction: rule.direction,
                tolerance: rule.tolerance,
            });
        }
        Ok(checks)
    }

    /// One throughput metric compared between baseline and fresh run.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RateCheck {
        /// Dotted JSON path of the metric (e.g. `runs.serial.frames_per_sec`).
        pub path: String,
        /// The committed baseline rate.
        pub baseline: f64,
        /// The freshly measured rate.
        pub fresh: f64,
    }

    impl RateCheck {
        /// fresh / baseline (infinite when the baseline is zero).
        pub fn ratio(&self) -> f64 {
            if self.baseline == 0.0 {
                f64::INFINITY
            } else {
                self.fresh / self.baseline
            }
        }

        /// Whether the fresh rate holds at least `min_ratio` of baseline.
        pub fn passes(&self, min_ratio: f64) -> bool {
            self.ratio() >= min_ratio
        }
    }

    /// Recursively collects `(dotted-path, value)` for every numeric field
    /// whose key ends in `_per_sec`.
    pub fn collect_rates(value: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
        match value {
            Value::Object(entries) => {
                for (key, child) in entries {
                    let path = if prefix.is_empty() {
                        key.clone()
                    } else {
                        format!("{prefix}.{key}")
                    };
                    match child {
                        Value::Float(f) if key.ends_with("_per_sec") => out.push((path, *f)),
                        Value::UInt(n) if key.ends_with("_per_sec") => out.push((path, *n as f64)),
                        Value::Int(n) if key.ends_with("_per_sec") => out.push((path, *n as f64)),
                        other => collect_rates(other, &path, out),
                    }
                }
            }
            Value::Array(items) => {
                for (i, item) in items.iter().enumerate() {
                    collect_rates(item, &format!("{prefix}[{i}]"), out);
                }
            }
            _ => {}
        }
    }

    /// Pairs every baseline rate with the fresh run's rate at the same
    /// path. A baseline metric missing from the fresh run is an error (a
    /// silently dropped metric must not pass the guard); fresh metrics with
    /// no baseline are ignored (new benches need a first commit to become
    /// baselines).
    pub fn compare_rates(baseline: &Value, fresh: &Value) -> Result<Vec<RateCheck>, String> {
        let mut baseline_rates = Vec::new();
        collect_rates(baseline, "", &mut baseline_rates);
        if baseline_rates.is_empty() {
            return Err("baseline contains no *_per_sec metrics".to_string());
        }
        let mut fresh_rates = Vec::new();
        collect_rates(fresh, "", &mut fresh_rates);
        let mut checks = Vec::with_capacity(baseline_rates.len());
        for (path, base) in baseline_rates {
            let Some((_, measured)) = fresh_rates.iter().find(|(p, _)| *p == path) else {
                return Err(format!("fresh run is missing baseline metric `{path}`"));
            };
            checks.push(RateCheck {
                path,
                baseline: base,
                fresh: *measured,
            });
        }
        Ok(checks)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn parse(json: &str) -> Value {
            serde_json::parse(json).unwrap()
        }

        #[test]
        fn collects_nested_rates_only() {
            let value = parse(
                r#"{"frames_total": 100, "runs": {"serial": {"secs": 0.5, "frames_per_sec": 200.0},
                   "sharded": {"frames_per_sec": 400.0}}, "other": [{"queries_per_sec": 10.0}]}"#,
            );
            let mut rates = Vec::new();
            collect_rates(&value, "", &mut rates);
            let paths: Vec<&str> = rates.iter().map(|(p, _)| p.as_str()).collect();
            assert_eq!(
                paths,
                vec![
                    "runs.serial.frames_per_sec",
                    "runs.sharded.frames_per_sec",
                    "other[0].queries_per_sec"
                ]
            );
        }

        #[test]
        fn compare_flags_regressions_and_passes_improvements() {
            let baseline = parse(
                r#"{"runs": {"a": {"frames_per_sec": 100.0}, "b": {"queries_per_sec": 50.0}}}"#,
            );
            let fresh = parse(
                r#"{"runs": {"a": {"frames_per_sec": 80.0}, "b": {"queries_per_sec": 75.0}}}"#,
            );
            let checks = compare_rates(&baseline, &fresh).unwrap();
            assert_eq!(checks.len(), 2);
            let a = checks.iter().find(|c| c.path.contains(".a.")).unwrap();
            assert!((a.ratio() - 0.8).abs() < 1e-12);
            assert!(a.passes(0.7));
            assert!(!a.passes(0.9));
            let b = checks.iter().find(|c| c.path.contains(".b.")).unwrap();
            assert!(b.passes(0.7));
        }

        #[test]
        fn missing_fresh_metric_is_an_error() {
            let baseline = parse(r#"{"x": {"frames_per_sec": 100.0}}"#);
            let fresh = parse(r#"{"y": {"frames_per_sec": 100.0}}"#);
            assert!(compare_rates(&baseline, &fresh).is_err());
        }

        #[test]
        fn baseline_without_rates_is_an_error() {
            let baseline = parse(r#"{"x": 1}"#);
            let fresh = parse(r#"{"x": {"frames_per_sec": 100.0}}"#);
            assert!(compare_rates(&baseline, &fresh).is_err());
        }

        #[test]
        fn extra_fresh_metrics_are_ignored() {
            let baseline = parse(r#"{"x": {"frames_per_sec": 100.0}}"#);
            let fresh = parse(r#"{"x": {"frames_per_sec": 100.0}, "y": {"frames_per_sec": 1.0}}"#);
            assert_eq!(compare_rates(&baseline, &fresh).unwrap().len(), 1);
        }

        #[test]
        fn zero_baseline_never_blocks() {
            let check = RateCheck {
                path: "x".into(),
                baseline: 0.0,
                fresh: 0.0,
            };
            assert!(check.passes(0.7));
        }

        #[test]
        fn serving_percentile_keys_hit_the_dedicated_latency_rule() {
            let rules = default_rules(0.7);
            for key in ["latency_p50_secs", "latency_p99_secs", "latency_p999_secs"] {
                let rule = rule_for(key, &rules).expect(key);
                assert_eq!(rule.pattern, "latency_p", "{key}");
                assert_eq!(rule.direction, MetricDirection::LowerIsBetter);
                assert!(rule.tolerance < 1.0 / 0.7, "tighter than generic latency");
            }
            // The generic rule still owns plain latency keys, and the shed
            // fraction gets its own lower-is-better bound.
            assert_eq!(
                rule_for("serve_latency_secs", &rules).unwrap().pattern,
                "latency_secs"
            );
            let shed = rule_for("shed_fraction", &rules).unwrap();
            assert_eq!(shed.direction, MetricDirection::LowerIsBetter);
        }

        #[test]
        fn anytime_keys_hit_their_own_rules_without_shadowing() {
            let rules = default_rules(0.7);
            // The new anytime rules claim their keys in the right
            // directions...
            for key in ["time_to_first_result_secs", "inferences_to_first_result"] {
                let rule = rule_for(key, &rules).expect(key);
                assert_eq!(rule.pattern, "_to_first_result", "{key}");
                assert_eq!(rule.direction, MetricDirection::LowerIsBetter);
            }
            let to_recall = rule_for("inferences_to_90_recall", &rules).unwrap();
            assert_eq!(
                to_recall.pattern, "inferences_to_",
                "an inference *budget* to a recall level is lower-is-better; \
                 the higher-is-better _recall rule must not claim it"
            );
            assert_eq!(to_recall.direction, MetricDirection::LowerIsBetter);
            let rpi = rule_for("results_per_inference", &rules).unwrap();
            assert_eq!(rpi.pattern, "results_per_inference");
            assert_eq!(rpi.direction, MetricDirection::HigherIsBetter);

            // ...and the pre-existing keys keep the rules they had: the
            // new patterns shadow neither the latency family nor the
            // fleet's failover / recall metrics.
            assert_eq!(
                rule_for("latency_p99_secs", &rules).unwrap().pattern,
                "latency_p"
            );
            assert_eq!(
                rule_for("serve_latency_secs", &rules).unwrap().pattern,
                "latency_secs"
            );
            assert_eq!(
                rule_for("failover_to_first_answer_secs", &rules)
                    .unwrap()
                    .pattern,
                "failover_to_first_answer"
            );
            let recall = rule_for("post_drift_recall", &rules).unwrap();
            assert_eq!(recall.pattern, "_recall");
            assert_eq!(recall.direction, MetricDirection::HigherIsBetter);
        }

        #[test]
        fn track_query_keys_hit_their_own_rules_without_shadowing() {
            let rules = default_rules(0.7);
            // The track-query planner's keys claim the new rules...
            let pruned = rule_for("candidates_pruned_fraction", &rules).unwrap();
            assert_eq!(pruned.pattern, "candidates_pruned");
            assert_eq!(pruned.direction, MetricDirection::HigherIsBetter);
            for key in [
                "inferences_sketch_planned_total",
                "inferences_class_only_total",
            ] {
                let rule = rule_for(key, &rules).expect(key);
                assert_eq!(rule.pattern, "inferences_", "{key}");
                assert_eq!(rule.direction, MetricDirection::LowerIsBetter);
            }
            assert_eq!(
                rule_for("track_mix_queries_per_sec", &rules)
                    .unwrap()
                    .pattern,
                "_per_sec"
            );
            // ...without shadowing the anytime cost-to-X keys, whose
            // dedicated rules sit earlier in the table.
            assert_eq!(
                rule_for("inferences_to_first_result", &rules)
                    .unwrap()
                    .pattern,
                "_to_first_result"
            );
            assert_eq!(
                rule_for("inferences_to_90_recall", &rules).unwrap().pattern,
                "inferences_to_"
            );
            // The generic counter rule also newly claims the anytime
            // exhaustive total — in the direction that total should move.
            let exhaustive = rule_for("exhaustive_inferences_total", &rules).unwrap();
            assert_eq!(exhaustive.pattern, "inferences_");
            assert_eq!(exhaustive.direction, MetricDirection::LowerIsBetter);
        }

        #[test]
        fn track_pruning_regressions_fail_in_their_directions() {
            let rules = default_rules(0.7);
            let baseline = parse(
                r#"{"mix": {"candidates_pruned_fraction": 0.5,
                    "inferences_sketch_planned_total": 40.0,
                    "inferences_class_only_total": 80.0,
                    "track_mix_queries_per_sec": 100.0}}"#,
            );
            // A planner that stops pruning (fraction collapses, sketch
            // path creeps back toward class-only cost) fails on both axes
            // even while throughput holds.
            let unpruned = parse(
                r#"{"mix": {"candidates_pruned_fraction": 0.1,
                    "inferences_sketch_planned_total": 75.0,
                    "inferences_class_only_total": 80.0,
                    "track_mix_queries_per_sec": 100.0}}"#,
            );
            let checks = compare_metrics(&baseline, &unpruned, &rules).unwrap();
            let failed: Vec<&str> = checks
                .iter()
                .filter(|c| !c.passes())
                .map(|c| c.path.as_str())
                .collect();
            assert_eq!(
                failed,
                vec![
                    "mix.candidates_pruned_fraction",
                    "mix.inferences_sketch_planned_total"
                ]
            );
            // Pruning more (and spending less) passes everywhere.
            let better = parse(
                r#"{"mix": {"candidates_pruned_fraction": 0.7,
                    "inferences_sketch_planned_total": 25.0,
                    "inferences_class_only_total": 80.0,
                    "track_mix_queries_per_sec": 110.0}}"#,
            );
            let checks = compare_metrics(&baseline, &better, &rules).unwrap();
            assert!(checks.iter().all(MetricCheck::passes), "{checks:?}");
        }

        #[test]
        fn anytime_cost_regressions_fail_in_their_directions() {
            let rules = default_rules(0.7);
            let baseline = parse(
                r#"{"anytime": {"time_to_first_result_secs": 0.02,
                    "inferences_to_first_result": 3.0,
                    "inferences_to_90_recall": 40.0,
                    "results_per_inference": 0.5,
                    "exhaustive_recall": 1.0}}"#,
            );
            // Creeping back toward exhaustive: more inferences before the
            // first result and before 90% recall must fail even though
            // recall itself held.
            let lazier = parse(
                r#"{"anytime": {"time_to_first_result_secs": 0.02,
                    "inferences_to_first_result": 9.0,
                    "inferences_to_90_recall": 80.0,
                    "results_per_inference": 0.5,
                    "exhaustive_recall": 1.0}}"#,
            );
            let checks = compare_metrics(&baseline, &lazier, &rules).unwrap();
            let failed: Vec<&str> = checks
                .iter()
                .filter(|c| !c.passes())
                .map(|c| c.path.as_str())
                .collect();
            assert_eq!(
                failed,
                vec![
                    "anytime.inferences_to_first_result",
                    "anytime.inferences_to_90_recall"
                ]
            );
            // A collapsed sampler (fewer results per inference) fails its
            // higher-is-better bound; an improvement on every axis passes.
            let inefficient = parse(
                r#"{"anytime": {"time_to_first_result_secs": 0.02,
                    "inferences_to_first_result": 3.0,
                    "inferences_to_90_recall": 40.0,
                    "results_per_inference": 0.2,
                    "exhaustive_recall": 1.0}}"#,
            );
            let checks = compare_metrics(&baseline, &inefficient, &rules).unwrap();
            let rpi = checks
                .iter()
                .find(|c| c.path.ends_with("results_per_inference"))
                .unwrap();
            assert_eq!(rpi.direction, MetricDirection::HigherIsBetter);
            assert!(!rpi.passes());
            let better = parse(
                r#"{"anytime": {"time_to_first_result_secs": 0.01,
                    "inferences_to_first_result": 1.0,
                    "inferences_to_90_recall": 25.0,
                    "results_per_inference": 0.8,
                    "exhaustive_recall": 1.0}}"#,
            );
            let checks = compare_metrics(&baseline, &better, &rules).unwrap();
            assert!(checks.iter().all(MetricCheck::passes), "{checks:?}");
        }

        #[test]
        fn serving_tail_regressions_fail_and_improvements_pass() {
            let rules = default_rules(0.7);
            let baseline = parse(
                r#"{"rates": {"above_capacity": {"latency_p99_secs": 0.2,
                    "latency_p999_secs": 0.4, "shed_fraction": 0.8}}}"#,
            );
            // p999 blows past one histogram bucket: must fail even though
            // every other metric is unchanged.
            let regressed = parse(
                r#"{"rates": {"above_capacity": {"latency_p99_secs": 0.2,
                    "latency_p999_secs": 0.6, "shed_fraction": 0.8}}}"#,
            );
            let checks = compare_metrics(&baseline, &regressed, &rules).unwrap();
            let p999 = checks.iter().find(|c| c.path.contains("p999")).unwrap();
            assert!(!p999.passes());
            assert!(checks.iter().filter(|c| !c.passes()).count() == 1);

            // Across-the-board improvement (lower tails, fewer sheds)
            // passes.
            let better = parse(
                r#"{"rates": {"above_capacity": {"latency_p99_secs": 0.1,
                    "latency_p999_secs": 0.3, "shed_fraction": 0.7}}}"#,
            );
            let checks = compare_metrics(&baseline, &better, &rules).unwrap();
            assert!(checks.iter().all(|c| c.passes()));

            // An over-shedding plane fails on shed_fraction alone.
            let shedding = parse(
                r#"{"rates": {"above_capacity": {"latency_p99_secs": 0.2,
                    "latency_p999_secs": 0.4, "shed_fraction": 0.95}}}"#,
            );
            let checks = compare_metrics(&baseline, &shedding, &rules).unwrap();
            let shed = checks.iter().find(|c| c.path.contains("shed")).unwrap();
            assert!(!shed.passes());
        }

        #[test]
        fn direction_aware_rules_classify_and_judge() {
            let rules = default_rules(0.7);
            let baseline = parse(
                r#"{"runs": {"a": {"frames_per_sec": 100.0, "serve_latency_secs": 0.5}},
                    "live": {"cache_hit_rate": 0.9, "segments_opened_per_query": 4.0},
                    "accuracy": {"post_drift_recall": 0.96}}"#,
            );
            // Better on every axis: faster, higher hit rate, fewer opens,
            // lower latency, higher recall.
            let better = parse(
                r#"{"runs": {"a": {"frames_per_sec": 140.0, "serve_latency_secs": 0.3}},
                    "live": {"cache_hit_rate": 0.99, "segments_opened_per_query": 2.0},
                    "accuracy": {"post_drift_recall": 1.0}}"#,
            );
            let checks = compare_metrics(&baseline, &better, &rules).unwrap();
            assert_eq!(checks.len(), 5);
            assert!(checks.iter().all(MetricCheck::passes), "{checks:?}");

            // A *higher* value must fail a lower-is-better metric even
            // though every higher-is-better metric improved.
            let more_opens = parse(
                r#"{"runs": {"a": {"frames_per_sec": 140.0, "serve_latency_secs": 0.3}},
                    "live": {"cache_hit_rate": 0.99, "segments_opened_per_query": 9.0},
                    "accuracy": {"post_drift_recall": 1.0}}"#,
            );
            let checks = compare_metrics(&baseline, &more_opens, &rules).unwrap();
            let failed: Vec<&str> = checks
                .iter()
                .filter(|c| !c.passes())
                .map(|c| c.path.as_str())
                .collect();
            assert_eq!(failed, vec!["live.segments_opened_per_query"]);

            // A collapsed hit rate fails its own (tight) tolerance while
            // the wide rate tolerance would have let the same ratio pass.
            let cold_cache = parse(
                r#"{"runs": {"a": {"frames_per_sec": 75.0, "serve_latency_secs": 0.5}},
                    "live": {"cache_hit_rate": 0.68, "segments_opened_per_query": 4.0},
                    "accuracy": {"post_drift_recall": 0.96}}"#,
            );
            let checks = compare_metrics(&baseline, &cold_cache, &rules).unwrap();
            let hit = checks
                .iter()
                .find(|c| c.path == "live.cache_hit_rate")
                .unwrap();
            assert!(!hit.passes(), "0.68/0.9 < 0.8 must fail");
            assert!(
                hit.ratio() > 0.7,
                "...even though the rate tolerance would pass it"
            );
            let rate = checks
                .iter()
                .find(|c| c.path == "runs.a.frames_per_sec")
                .unwrap();
            assert!(rate.passes(), "75/100 is within the 0.7 rate tolerance");
        }

        #[test]
        fn cost_share_metrics_are_guarded_lower_is_better() {
            let rules = default_rules(0.7);
            let baseline = parse(r#"{"live": {"adaptation_gpu_share_of_gt_ingest": 0.5}}"#);
            let worse = parse(r#"{"live": {"adaptation_gpu_share_of_gt_ingest": 0.9}}"#);
            let checks = compare_metrics(&baseline, &worse, &rules).unwrap();
            assert_eq!(checks.len(), 1);
            assert_eq!(checks[0].direction, MetricDirection::LowerIsBetter);
            assert!(!checks[0].passes(), "a costlier controller must fail");
            let same = compare_metrics(&baseline, &baseline, &rules).unwrap();
            assert!(same[0].passes());
        }

        #[test]
        fn block_and_byte_read_metrics_are_guarded_lower_is_better() {
            let rules = default_rules(0.7);
            let baseline = parse(
                r#"{"pruning": {"blocks_read_per_query_cold": 4.0, "cold_bytes_read": 1000}}"#,
            );
            let regressed = parse(
                r#"{"pruning": {"blocks_read_per_query_cold": 9.0, "cold_bytes_read": 400}}"#,
            );
            let checks = compare_metrics(&baseline, &regressed, &rules).unwrap();
            assert_eq!(checks.len(), 2);
            assert!(checks
                .iter()
                .all(|c| c.direction == MetricDirection::LowerIsBetter));
            let failed: Vec<&str> = checks
                .iter()
                .filter(|c| !c.passes())
                .map(|c| c.path.as_str())
                .collect();
            assert_eq!(failed, vec!["pruning.blocks_read_per_query_cold"]);
        }

        #[test]
        fn fleet_metrics_are_guarded_in_their_directions() {
            let rules = default_rules(0.7);
            let baseline = parse(
                r#"{"nodes": {"n2": {"scatter_width": 2.5, "wire_bytes_per_query": 4000.0,
                    "queries_per_sec": 120.0, "failover_to_first_answer_secs": 0.02}}}"#,
            );
            // A fleet that degrades to broadcast (wider scatter, more
            // bytes) fails even though throughput held.
            let broadcasty = parse(
                r#"{"nodes": {"n2": {"scatter_width": 3.0, "wire_bytes_per_query": 9000.0,
                    "queries_per_sec": 120.0, "failover_to_first_answer_secs": 0.02}}}"#,
            );
            let checks = compare_metrics(&baseline, &broadcasty, &rules).unwrap();
            let failed: Vec<&str> = checks
                .iter()
                .filter(|c| !c.passes())
                .map(|c| c.path.as_str())
                .collect();
            assert_eq!(
                failed,
                vec!["nodes.n2.scatter_width", "nodes.n2.wire_bytes_per_query"]
            );
            // A slower failover fails its own bound; a faster one passes.
            let slow_failover = parse(
                r#"{"nodes": {"n2": {"scatter_width": 2.5, "wire_bytes_per_query": 4000.0,
                    "queries_per_sec": 120.0, "failover_to_first_answer_secs": 0.2}}}"#,
            );
            let checks = compare_metrics(&baseline, &slow_failover, &rules).unwrap();
            let failover = checks.iter().find(|c| c.path.contains("failover")).unwrap();
            assert_eq!(failover.direction, MetricDirection::LowerIsBetter);
            assert!(!failover.passes());
            let checks = compare_metrics(&baseline, &baseline, &rules).unwrap();
            assert_eq!(checks.len(), 4, "queries_per_sec is guarded too");
            assert!(checks.iter().all(MetricCheck::passes));
        }

        #[test]
        fn direction_aware_missing_metric_is_an_error() {
            let rules = default_rules(0.7);
            let baseline = parse(r#"{"live": {"cache_hit_rate": 0.9}}"#);
            let fresh = parse(r#"{"live": {"other": 1.0}}"#);
            assert!(compare_metrics(&baseline, &fresh, &rules).is_err());
            let no_metrics = parse(r#"{"x": "y"}"#);
            assert!(compare_metrics(&no_metrics, &fresh, &rules).is_err());
        }

        #[test]
        fn zero_baselines_are_sane_in_both_directions() {
            let check = |direction, baseline, fresh, tolerance| MetricCheck {
                path: "x".into(),
                baseline,
                fresh,
                direction,
                tolerance,
            };
            // 0 → 0 passes both directions.
            assert!(check(MetricDirection::HigherIsBetter, 0.0, 0.0, 0.7).passes());
            assert!(check(MetricDirection::LowerIsBetter, 0.0, 0.0, 1.25).passes());
            // 0 → positive: an improvement for higher-is-better, a
            // regression for lower-is-better.
            assert!(check(MetricDirection::HigherIsBetter, 0.0, 5.0, 0.7).passes());
            assert!(!check(MetricDirection::LowerIsBetter, 0.0, 5.0, 1.25).passes());
        }

        #[test]
        fn committed_baselines_pass_against_themselves_direction_aware() {
            for file in [
                "BENCH_ingest.json",
                "BENCH_query.json",
                "BENCH_segments.json",
                "BENCH_service.json",
                "BENCH_adaptive.json",
                "BENCH_serving.json",
                "BENCH_cluster.json",
                "BENCH_anytime.json",
                "BENCH_tracks.json",
            ] {
                let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + file;
                let text = std::fs::read_to_string(&path).unwrap();
                let value = serde_json::parse(&text).unwrap();
                let checks = compare_metrics(&value, &value, &default_rules(0.7)).unwrap();
                assert!(!checks.is_empty(), "{file} has no guarded metrics");
                assert!(checks.iter().all(MetricCheck::passes), "{file}: {checks:?}");
            }
        }

        #[test]
        fn real_committed_baselines_parse() {
            // The committed trajectory files must keep working as guard
            // baselines.
            for file in ["BENCH_ingest.json", "BENCH_query.json"] {
                let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + file;
                let text = std::fs::read_to_string(&path).unwrap();
                let value = serde_json::parse(&text).unwrap();
                let mut rates = Vec::new();
                collect_rates(&value, "", &mut rates);
                assert!(!rates.is_empty(), "{file} has no rates");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_env_overrides_default() {
        // Not setting the env var yields the default.
        std::env::remove_var(DURATION_ENV);
        assert_eq!(experiment_duration_secs(), 360.0);
        std::env::set_var(DURATION_ENV, "120");
        assert_eq!(experiment_duration_secs(), 120.0);
        std::env::set_var(DURATION_ENV, "not a number");
        assert_eq!(experiment_duration_secs(), 360.0);
        std::env::remove_var(DURATION_ENV);
    }

    #[test]
    fn standard_config_uses_paper_defaults() {
        std::env::remove_var(DURATION_ENV);
        std::env::remove_var(SAMPLE_ENV);
        let cfg = standard_config();
        assert_eq!(cfg.target.precision, 0.95);
        assert_eq!(cfg.policy, TradeoffPolicy::Balance);
        assert_eq!(cfg.gpus.num_gpus, 10);
        assert_eq!(cfg.query_classes, 5);
    }

    #[test]
    fn text_table_alignment() {
        let mut table = TextTable::new(vec!["stream", "factor"]);
        table.row(vec!["auburn_c", "86x"]);
        table.row(vec!["cnn", "64x"]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("stream"));
        assert!(lines[2].contains("auburn_c"));
        // All lines are padded to the same width.
        assert_eq!(lines[2].len(), lines[0].len());
        assert_eq!(lines[3].len(), lines[1].len());
    }

    #[test]
    fn row_padding_fills_missing_cells() {
        let mut table = TextTable::new(vec!["a", "b", "c"]);
        table.row(vec!["1"]);
        assert_eq!(table.rows[0].len(), 3);
    }

    #[test]
    fn factor_and_percent_formatting() {
        assert_eq!(fmt_factor(58.4), "58x");
        assert_eq!(fmt_factor(3.24), "3.2x");
        assert_eq!(fmt_factor(f64::INFINITY), "inf");
        assert_eq!(fmt_percent(0.954), "95.4%");
    }
}
