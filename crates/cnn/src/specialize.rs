//! Per-stream CNN specialization (§4.3 of the paper).
//!
//! A specialized model is retrained for one specific video stream on its
//! `Ls` most frequent object classes plus a catch-all `OTHER` class. Because
//! it differentiates among a few dozen constrained-appearance classes rather
//! than a thousand generic ones, it is both substantially cheaper (the paper
//! reports specialized models 7×–71× cheaper than the ground truth) and
//! accurate enough that a top-K index with K = 2–4 reaches the recall that a
//! generic compressed model only reaches at K = 60–200.
//!
//! [`SpecializedCnn::train`] mirrors the paper's retraining procedure: it
//! takes a ground-truth-labelled sample of the stream (the paper samples
//! frames periodically and labels them with the GT-CNN), derives the class
//! frequency distribution, picks the top `Ls` classes, and produces a model
//! whose error model is *tight* for those classes and which maps everything
//! else to [`OTHER_CLASS`].

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use focus_video::{ClassId, ObjectObservation, NUM_CLASSES};

use crate::cost::GpuCost;
use crate::features::{FeatureExtractor, FeatureVector};
use crate::model::{Classifier, RankedClasses};

/// The synthetic class id reserved for the specialized models' "OTHER"
/// output (§4.3, "OTHER class"). It lies outside the ground-truth label
/// space on purpose.
pub const OTHER_CLASS: ClassId = ClassId(NUM_CLASSES);

/// How aggressively the specialized model is compressed. More aggressive
/// levels are cheaper but need a slightly larger K to reach the same recall,
/// which is exactly the ingest-cost/query-latency trade-off Focus's
/// parameter selection navigates (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecializationLevel {
    /// Few layers removed, larger inputs: most accurate, least cheap.
    Light,
    /// The balanced default.
    Medium,
    /// Aggressive compression: cheapest, needs the largest K.
    Aggressive,
}

impl SpecializationLevel {
    /// All levels, cheapest last.
    pub fn all() -> [SpecializationLevel; 3] {
        [
            SpecializationLevel::Light,
            SpecializationLevel::Medium,
            SpecializationLevel::Aggressive,
        ]
    }

    /// How many times cheaper than the ground-truth CNN a specialized model
    /// at this level is, before the (small) adjustment for `Ls`.
    fn base_cheapness(self) -> f64 {
        match self {
            SpecializationLevel::Light => 26.0,
            SpecializationLevel::Medium => 45.0,
            SpecializationLevel::Aggressive => 68.0,
        }
    }

    /// Probability that the true class (when among the specialized classes)
    /// is ranked top-most.
    fn in_set_top1(self) -> f64 {
        match self {
            SpecializationLevel::Light => 0.93,
            SpecializationLevel::Medium => 0.88,
            SpecializationLevel::Aggressive => 0.80,
        }
    }

    /// Geometric decay of the rank when the true class is not top-most.
    fn in_set_decay(self) -> f64 {
        match self {
            SpecializationLevel::Light => 0.60,
            SpecializationLevel::Medium => 0.50,
            SpecializationLevel::Aggressive => 0.38,
        }
    }

    /// Probability that an object whose class is *not* among the specialized
    /// classes is correctly recognized as OTHER at rank 1.
    fn other_top1(self) -> f64 {
        match self {
            SpecializationLevel::Light => 0.92,
            SpecializationLevel::Medium => 0.88,
            SpecializationLevel::Aggressive => 0.82,
        }
    }

    /// Display name of the level.
    pub fn name(self) -> &'static str {
        match self {
            SpecializationLevel::Light => "light",
            SpecializationLevel::Medium => "medium",
            SpecializationLevel::Aggressive => "aggressive",
        }
    }
}

fn hash64(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn drift_bucket(drift: f32) -> u64 {
    // One bucket corresponds to roughly one second of accumulated
    // appearance drift: the same physical object keeps (or misses) its
    // classification for about a second at a time, so errors are correlated
    // across the near-duplicate observations the way a real frozen model's
    // errors are.
    (drift / 0.6).floor() as u64
}

/// A per-stream specialized classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpecializedCnn {
    name: String,
    stream_name: String,
    level: SpecializationLevel,
    /// The Ls specialized classes, most frequent first.
    classes: Vec<ClassId>,
    cheapness: f64,
    in_set_top1: f64,
    in_set_decay: f64,
    other_top1: f64,
    features: FeatureExtractor,
}

impl SpecializedCnn {
    /// Trains a specialized model for one stream.
    ///
    /// * `stream_name` — the stream this model is specialized for (part of
    ///   the model identity).
    /// * `level` — compression aggressiveness.
    /// * `labelled_sample` — `(observation, ground-truth class)` pairs
    ///   obtained by running the GT-CNN on a sampled slice of the stream
    ///   (the paper retrains periodically from such samples).
    /// * `ls` — number of most-frequent classes to specialize for.
    ///
    /// Returns `None` if the sample is empty or `ls` is zero — there is
    /// nothing to specialize on.
    pub fn train(
        stream_name: &str,
        level: SpecializationLevel,
        labelled_sample: &[(ObjectObservation, ClassId)],
        ls: usize,
    ) -> Option<Self> {
        if labelled_sample.is_empty() || ls == 0 {
            return None;
        }
        let mut freq: HashMap<ClassId, usize> = HashMap::new();
        for (_, class) in labelled_sample {
            *freq.entry(*class).or_insert(0) += 1;
        }
        let mut ranked: Vec<(ClassId, usize)> = freq.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let classes: Vec<ClassId> = ranked.into_iter().take(ls).map(|(c, _)| c).collect();
        let ls_actual = classes.len();
        // Specializing over fewer classes is a simpler task, hence slightly
        // cheaper and slightly more accurate (§4.3).
        let ls_factor = 1.0 + 0.25 * (20.0 / (ls_actual as f64 + 20.0));
        let cheapness = level.base_cheapness() * ls_factor;
        let accuracy_bonus = 0.02 * (20.0 / (ls_actual as f64 + 20.0));
        let name = format!(
            "Specialized[{}|{}|Ls={}]",
            stream_name,
            level.name(),
            ls_actual
        );
        Some(Self {
            features: FeatureExtractor::new(name.clone(), 0.035),
            name,
            stream_name: stream_name.to_string(),
            level,
            classes,
            cheapness,
            in_set_top1: (level.in_set_top1() + accuracy_bonus).min(0.99),
            in_set_decay: level.in_set_decay(),
            other_top1: level.other_top1(),
        })
    }

    /// The classes this model was specialized for, most frequent first.
    pub fn specialized_classes(&self) -> &[ClassId] {
        &self.classes
    }

    /// Whether `class` is among the specialized classes.
    pub fn is_specialized_for(&self, class: ClassId) -> bool {
        self.classes.contains(&class)
    }

    /// Number of specialized classes (the realized `Ls`).
    pub fn ls(&self) -> usize {
        self.classes.len()
    }

    /// The specialization level the model was trained at.
    pub fn level(&self) -> SpecializationLevel {
        self.level
    }

    /// The stream this model was specialized for.
    pub fn stream_name(&self) -> &str {
        &self.stream_name
    }

    fn model_seed(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.name.hash(&mut h);
        h.finish()
    }

    /// The label the model is *trying* to produce for this object: the true
    /// class when specialized for it, OTHER otherwise.
    fn target_label(&self, obj: &ObjectObservation) -> ClassId {
        if self.is_specialized_for(obj.true_class) {
            obj.true_class
        } else {
            OTHER_CLASS
        }
    }

    /// Rank of the target label in this model's output. Deterministic per
    /// (model, track, drift bucket).
    fn target_rank(&self, obj: &ObjectObservation) -> usize {
        let seed = self.model_seed();
        let key = hash64(&[
            seed,
            0x5BEC,
            obj.appearance.track_signature,
            drift_bucket(obj.appearance.drift),
        ]);
        let u = unit_from_hash(key);
        let in_set = self.is_specialized_for(obj.true_class);
        let top1 = if in_set {
            self.in_set_top1
        } else {
            self.other_top1
        };
        if u < top1 {
            return 1;
        }
        let decay = if in_set {
            self.in_set_decay
        } else {
            self.in_set_decay * 0.8
        };
        let v = unit_from_hash(hash64(&[key, 0x7A11]));
        let extra = ((1.0 - v).ln() / (1.0 - decay.clamp(1e-3, 0.999)).ln())
            .ceil()
            .max(1.0);
        1 + extra as usize
    }
}

impl Classifier for SpecializedCnn {
    fn name(&self) -> &str {
        &self.name
    }

    fn cost_per_inference(&self) -> GpuCost {
        GpuCost::inference_with_cheapness(self.cheapness)
    }

    fn cheapness_vs_gt(&self) -> f64 {
        self.cheapness
    }

    fn classify_top_k(&self, obj: &ObjectObservation, k: usize) -> RankedClasses {
        let k = k.max(1);
        let target = self.target_label(obj);
        let target_rank = self.target_rank(obj);
        // The output label space is the Ls specialized classes plus OTHER.
        let seed = self.model_seed();
        let mut candidates: Vec<ClassId> = self.classes.clone();
        candidates.push(OTHER_CLASS);
        // Deterministic per-object ordering of the distractor labels.
        let obj_seed = hash64(&[
            seed,
            obj.appearance.track_signature,
            drift_bucket(obj.appearance.drift),
        ]);
        candidates.retain(|c| *c != target);
        candidates.sort_by_key(|c| hash64(&[obj_seed, c.0 as u64]));
        let mut ranked = Vec::with_capacity(k.min(self.classes.len() + 1));
        let mut distractors = candidates.into_iter();
        let mut position = 1usize;
        while ranked.len() < k && ranked.len() <= self.classes.len() {
            let class = if position == target_rank {
                Some(target)
            } else {
                distractors.next()
            };
            let Some(class) = class else { break };
            let confidence = 1.0 / position as f32;
            ranked.push((class, confidence));
            position += 1;
        }
        // If the target's rank fell beyond the label-space size it simply
        // does not appear — the specialized model "missed" the object.
        RankedClasses { ranked }
    }

    fn extract_features(&self, obj: &ObjectObservation) -> FeatureVector {
        self.features.extract(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GroundTruthCnn;
    use focus_video::{profile, VideoDataset};

    fn labelled_sample(stream: &str, secs: f64) -> Vec<(ObjectObservation, ClassId)> {
        let ds = VideoDataset::generate(profile::profile_by_name(stream).unwrap(), secs);
        let gt = GroundTruthCnn::resnet152();
        ds.objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect()
    }

    #[test]
    fn training_requires_data() {
        assert!(SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &[], 10).is_none());
        let sample = labelled_sample("auburn_c", 60.0);
        assert!(
            SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &sample, 0).is_none()
        );
    }

    #[test]
    fn specialized_classes_are_the_most_frequent() {
        let sample = labelled_sample("auburn_c", 300.0);
        let model =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &sample, 10).unwrap();
        assert_eq!(model.ls(), 10);
        // The most frequent class in the sample must be specialized for.
        let mut freq: HashMap<ClassId, usize> = HashMap::new();
        for (_, c) in &sample {
            *freq.entry(*c).or_insert(0) += 1;
        }
        let top = freq
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(c, _)| *c)
            .unwrap();
        assert!(model.is_specialized_for(top));
    }

    #[test]
    fn specialized_model_is_much_cheaper_than_gt() {
        let sample = labelled_sample("auburn_c", 120.0);
        for level in SpecializationLevel::all() {
            let model = SpecializedCnn::train("auburn_c", level, &sample, 20).unwrap();
            assert!(
                model.cheapness_vs_gt() > 20.0 && model.cheapness_vs_gt() < 100.0,
                "{}: cheapness {}",
                model.name(),
                model.cheapness_vs_gt()
            );
        }
        // Aggressive is cheaper than light.
        let light =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Light, &sample, 20).unwrap();
        let aggressive =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Aggressive, &sample, 20)
                .unwrap();
        assert!(aggressive.cheapness_vs_gt() > light.cheapness_vs_gt());
    }

    #[test]
    fn small_k_reaches_high_recall_for_specialized_classes() {
        // §4.3: specialized models can use K = 2–4 instead of K = 60–200.
        let sample = labelled_sample("auburn_c", 600.0);
        let model =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &sample, 15).unwrap();
        let in_set: Vec<&ObjectObservation> = sample
            .iter()
            .map(|(o, _)| o)
            .filter(|o| model.is_specialized_for(o.true_class))
            .collect();
        assert!(in_set.len() > 100);
        let recall_at = |k: usize| {
            in_set
                .iter()
                .filter(|o| model.classify_top_k(o, k).contains_in_top(o.true_class, k))
                .count() as f64
                / in_set.len() as f64
        };
        assert!(recall_at(2) > 0.90, "recall@2 = {}", recall_at(2));
        assert!(recall_at(4) > 0.95, "recall@4 = {}", recall_at(4));
        assert!(recall_at(4) >= recall_at(2));
    }

    #[test]
    fn out_of_set_objects_map_to_other() {
        let sample = labelled_sample("auburn_c", 600.0);
        let model =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &sample, 5).unwrap();
        let out_of_set: Vec<&ObjectObservation> = sample
            .iter()
            .map(|(o, _)| o)
            .filter(|o| !model.is_specialized_for(o.true_class))
            .collect();
        assert!(!out_of_set.is_empty());
        let hits = out_of_set
            .iter()
            .filter(|o| model.classify_top_k(o, 3).contains_in_top(OTHER_CLASS, 3))
            .count();
        let fraction = hits as f64 / out_of_set.len() as f64;
        assert!(fraction > 0.85, "OTHER recall@3 = {fraction}");
    }

    #[test]
    fn output_label_space_is_ls_plus_other() {
        let sample = labelled_sample("auburn_c", 120.0);
        let model =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Light, &sample, 8).unwrap();
        for (obj, _) in sample.iter().take(200) {
            let out = model.classify_top_k(obj, 50);
            assert!(out.ranked.len() <= model.ls() + 1);
            for (c, _) in &out.ranked {
                assert!(
                    *c == OTHER_CLASS || model.is_specialized_for(*c),
                    "unexpected label {c:?}"
                );
            }
            // No duplicates.
            let mut seen = std::collections::HashSet::new();
            for (c, _) in &out.ranked {
                assert!(seen.insert(*c));
            }
        }
    }

    #[test]
    fn other_class_is_outside_gt_label_space() {
        assert!(!OTHER_CLASS.is_valid());
        assert_eq!(OTHER_CLASS.0, 1000);
    }

    #[test]
    fn classification_is_deterministic() {
        let sample = labelled_sample("lausanne", 120.0);
        let model =
            SpecializedCnn::train("lausanne", SpecializationLevel::Medium, &sample, 10).unwrap();
        for (obj, _) in sample.iter().take(100) {
            assert_eq!(model.classify_top_k(obj, 5), model.classify_top_k(obj, 5));
        }
    }

    #[test]
    fn smaller_ls_is_cheaper() {
        let sample = labelled_sample("auburn_c", 120.0);
        let small =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &sample, 5).unwrap();
        let large =
            SpecializedCnn::train("auburn_c", SpecializationLevel::Medium, &sample, 60).unwrap();
        assert!(small.cheapness_vs_gt() >= large.cheapness_vs_gt());
    }
}
