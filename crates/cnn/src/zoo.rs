//! The model zoo: the candidate set of ingest-time CNNs that Focus's
//! parameter selection searches over (§4.1, §4.4).
//!
//! The zoo has two parts:
//!
//! * **Generic compressed models** — architecture family members with
//!   varying compression, built once and shared by every stream.
//! * **Specialized models** — retrained per stream from a ground-truth
//!   labelled sample, for each combination of specialization level and `Ls`.

use focus_video::{ClassId, ObjectObservation};

use crate::architecture::{Architecture, CompressionSpec, ModelSpec};
use crate::model::CheapCnn;
use crate::specialize::{SpecializationLevel, SpecializedCnn};

/// Factory for ingest-CNN candidates.
#[derive(Debug, Clone, Default)]
pub struct ModelZoo;

impl ModelZoo {
    /// Creates the zoo.
    pub fn new() -> Self {
        Self
    }

    /// The generic compressed candidate specs, cheapest last.
    ///
    /// Includes the three canonical CheapCNNs from Figure 5 plus a few other
    /// points in the architecture × compression space to give the parameter
    /// sweep a non-trivial search space.
    pub fn generic_specs(&self) -> Vec<ModelSpec> {
        let mut specs = vec![
            ModelSpec::new(Architecture::ResNet50, CompressionSpec::NONE),
            ModelSpec::cheap_cnn_1(),
            ModelSpec::new(
                Architecture::ResNet18,
                CompressionSpec {
                    layers_removed: 2,
                    input_resolution: 160,
                },
            ),
            ModelSpec::cheap_cnn_2(),
            ModelSpec::new(
                Architecture::AlexNet,
                CompressionSpec {
                    layers_removed: 1,
                    input_resolution: 112,
                },
            ),
            ModelSpec::cheap_cnn_3(),
        ];
        specs.sort_by(|a, b| a.cheapness().partial_cmp(&b.cheapness()).unwrap());
        specs
    }

    /// Instantiates every generic compressed candidate.
    pub fn generic_models(&self) -> Vec<CheapCnn> {
        self.generic_specs()
            .into_iter()
            .map(CheapCnn::from_spec)
            .collect()
    }

    /// The three canonical cheap CNNs annotated in Figure 5 of the paper.
    pub fn figure5_models(&self) -> [CheapCnn; 3] {
        [
            CheapCnn::cheap_cnn_1(),
            CheapCnn::cheap_cnn_2(),
            CheapCnn::cheap_cnn_3(),
        ]
    }

    /// The `Ls` values (number of specialized classes) explored per stream.
    pub fn ls_candidates(&self) -> Vec<usize> {
        vec![10, 20, 40]
    }

    /// The reduced generic candidate set used when parameters are
    /// re-selected *online* on a short window sample (the adaptive
    /// controller's drift response): the three canonical CheapCNNs only.
    /// The exotic architecture × compression points of
    /// [`generic_specs`](Self::generic_specs) earn their GPU time in the
    /// offline sweep over a long sample; on a drift-sized window they cost
    /// a full classification pass each without changing the choice.
    pub fn adaptive_specs(&self) -> Vec<ModelSpec> {
        vec![
            ModelSpec::cheap_cnn_1(),
            ModelSpec::cheap_cnn_2(),
            ModelSpec::cheap_cnn_3(),
        ]
    }

    /// The `Ls` values explored by the online re-selection sweep — a
    /// subset of [`ls_candidates`](Self::ls_candidates) for the same
    /// reason [`adaptive_specs`](Self::adaptive_specs) is reduced.
    pub fn adaptive_ls_candidates(&self) -> Vec<usize> {
        vec![10, 20]
    }

    /// Trains the specialized candidates for one stream from a ground-truth
    /// labelled sample: every combination of specialization level and `Ls`.
    pub fn specialized_models(
        &self,
        stream_name: &str,
        labelled_sample: &[(ObjectObservation, ClassId)],
    ) -> Vec<SpecializedCnn> {
        let mut models = Vec::new();
        for level in SpecializationLevel::all() {
            for ls in self.ls_candidates() {
                if let Some(model) = SpecializedCnn::train(stream_name, level, labelled_sample, ls)
                {
                    models.push(model);
                }
            }
        }
        models
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Classifier, GroundTruthCnn};
    use focus_video::{profile, VideoDataset};

    #[test]
    fn generic_specs_are_sorted_and_include_figure5_models() {
        let zoo = ModelZoo::new();
        let specs = zoo.generic_specs();
        assert!(specs.len() >= 4);
        for w in specs.windows(2) {
            assert!(w[0].cheapness() <= w[1].cheapness());
        }
        let names: Vec<String> = specs.iter().map(|s| s.display_name()).collect();
        assert!(names.contains(&ModelSpec::cheap_cnn_1().display_name()));
        assert!(names.contains(&ModelSpec::cheap_cnn_3().display_name()));
    }

    #[test]
    fn generic_models_match_specs() {
        let zoo = ModelZoo::new();
        let models = zoo.generic_models();
        assert_eq!(models.len(), zoo.generic_specs().len());
        for m in &models {
            assert!(m.cheapness_vs_gt() > 1.0);
        }
    }

    #[test]
    fn figure5_models_have_increasing_cheapness() {
        let [a, b, c] = ModelZoo::new().figure5_models();
        assert!(a.cheapness_vs_gt() < b.cheapness_vs_gt());
        assert!(b.cheapness_vs_gt() < c.cheapness_vs_gt());
    }

    #[test]
    fn specialized_models_cover_levels_and_ls() {
        let zoo = ModelZoo::new();
        let ds = VideoDataset::generate(profile::profile_by_name("auburn_c").unwrap(), 120.0);
        let gt = GroundTruthCnn::resnet152();
        let sample: Vec<_> = ds
            .objects()
            .map(|o| (o.clone(), gt.classify_top1(o)))
            .collect();
        let models = zoo.specialized_models("auburn_c", &sample);
        assert_eq!(models.len(), 3 * zoo.ls_candidates().len());
        for m in &models {
            assert!(m.ls() > 0);
            assert!(m.cheapness_vs_gt() > 10.0);
        }
    }

    #[test]
    fn specialized_models_with_empty_sample_is_empty() {
        let zoo = ModelZoo::new();
        assert!(zoo.specialized_models("auburn_c", &[]).is_empty());
    }

    #[test]
    fn adaptive_candidates_are_a_subset_of_the_full_sweep() {
        let zoo = ModelZoo::new();
        let full: Vec<String> = zoo
            .generic_specs()
            .iter()
            .map(|s| s.display_name())
            .collect();
        let adaptive = zoo.adaptive_specs();
        assert!(adaptive.len() < zoo.generic_specs().len());
        for spec in &adaptive {
            assert!(full.contains(&spec.display_name()));
        }
        let ls = zoo.adaptive_ls_candidates();
        assert!(!ls.is_empty());
        for l in &ls {
            assert!(zoo.ls_candidates().contains(l));
        }
    }
}
