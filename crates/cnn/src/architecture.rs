//! Model architectures, compression specifications and model specs.
//!
//! Focus's search space for the ingest-time CNN starts from a family of
//! classifier architectures (ResNet, AlexNet, VGG — §4.1) and applies
//! compression: removing convolutional layers and shrinking the input
//! resolution (§2.1). A [`ModelSpec`] pins down one concrete member of that
//! space together with its cost relative to the ground-truth CNN and its
//! *rank quality*, the scalar that drives the top-K error model in
//! [`crate::model`].

use serde::{Deserialize, Serialize};

/// A CNN architecture family member, ordered roughly by inference cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// ResNet152 — the ground-truth CNN in the paper.
    ResNet152,
    /// VGG16 — accurate but nearly as expensive as ResNet152.
    Vgg16,
    /// ResNet50 — mid-size residual network.
    ResNet50,
    /// ResNet18 — the 8×-cheaper compressed starting point used in Figure 5.
    ResNet18,
    /// AlexNet — the cheapest stock architecture considered.
    AlexNet,
}

impl Architecture {
    /// All architectures, cheapest last.
    pub fn all() -> [Architecture; 5] {
        [
            Architecture::ResNet152,
            Architecture::Vgg16,
            Architecture::ResNet50,
            Architecture::ResNet18,
            Architecture::AlexNet,
        ]
    }

    /// How many times cheaper one inference of this architecture is compared
    /// to ResNet152, at full input resolution and with no layers removed.
    pub fn base_cheapness(self) -> f64 {
        match self {
            Architecture::ResNet152 => 1.0,
            Architecture::Vgg16 => 1.4,
            Architecture::ResNet50 => 2.9,
            Architecture::ResNet18 => 8.0,
            Architecture::AlexNet => 15.0,
        }
    }

    /// Baseline rank quality in `[0, 1]`: how reliably the architecture
    /// places the ground-truth class at rank 1 before any compression.
    pub fn base_rank_quality(self) -> f64 {
        match self {
            Architecture::ResNet152 => 1.0,
            Architecture::Vgg16 => 0.95,
            Architecture::ResNet50 => 0.92,
            Architecture::ResNet18 => 0.86,
            Architecture::AlexNet => 0.74,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::ResNet152 => "ResNet152",
            Architecture::Vgg16 => "VGG16",
            Architecture::ResNet50 => "ResNet50",
            Architecture::ResNet18 => "ResNet18",
            Architecture::AlexNet => "AlexNet",
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Compression applied to an architecture: removing convolutional layers and
/// rescaling the input image (§2.1, §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompressionSpec {
    /// Number of convolutional layers removed from the architecture.
    pub layers_removed: u8,
    /// Input image resolution in pixels (224 is the uncompressed ImageNet
    /// input; the paper also evaluates 112 and 56).
    pub input_resolution: u16,
}

impl CompressionSpec {
    /// No compression: all layers, 224-pixel inputs.
    pub const NONE: CompressionSpec = CompressionSpec {
        layers_removed: 0,
        input_resolution: 224,
    };

    /// Multiplier (> 1) by which this compression makes inference cheaper.
    pub fn cost_reduction(&self) -> f64 {
        let resolution_gain = (224.0 / self.input_resolution.max(16) as f64).powf(1.1);
        let layer_gain = 1.0 + 0.12 * self.layers_removed as f64;
        resolution_gain * layer_gain
    }

    /// Multiplier (≤ 1) by which this compression degrades rank quality.
    pub fn quality_retention(&self) -> f64 {
        let resolution_loss = (self.input_resolution.max(16) as f64 / 224.0).powf(0.18);
        let layer_loss = (1.0 - 0.035 * self.layers_removed as f64).max(0.4);
        (resolution_loss * layer_loss).min(1.0)
    }
}

impl std::fmt::Display for CompressionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "-{}L@{}px", self.layers_removed, self.input_resolution)
    }
}

/// A fully specified (possibly compressed) generic classifier model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Base architecture.
    pub architecture: Architecture,
    /// Compression applied to it.
    pub compression: CompressionSpec,
}

impl ModelSpec {
    /// The uncompressed ground-truth model (ResNet152).
    pub fn ground_truth() -> ModelSpec {
        ModelSpec {
            architecture: Architecture::ResNet152,
            compression: CompressionSpec::NONE,
        }
    }

    /// A spec for an architecture with a given compression.
    pub fn new(architecture: Architecture, compression: CompressionSpec) -> ModelSpec {
        ModelSpec {
            architecture,
            compression,
        }
    }

    /// CheapCNN1 of Figure 5: ResNet18, no layers removed, 224-pixel input —
    /// about 7× cheaper than the ground truth.
    pub fn cheap_cnn_1() -> ModelSpec {
        ModelSpec::new(
            Architecture::ResNet18,
            CompressionSpec {
                layers_removed: 0,
                input_resolution: 224,
            },
        )
    }

    /// CheapCNN2 of Figure 5: ResNet18 with 3 layers removed, 112-pixel
    /// input — about 28× cheaper than the ground truth.
    pub fn cheap_cnn_2() -> ModelSpec {
        ModelSpec::new(
            Architecture::ResNet18,
            CompressionSpec {
                layers_removed: 3,
                input_resolution: 112,
            },
        )
    }

    /// CheapCNN3 of Figure 5: ResNet18 with 5 layers removed, 56-pixel
    /// input — about 58× cheaper than the ground truth.
    pub fn cheap_cnn_3() -> ModelSpec {
        ModelSpec::new(
            Architecture::ResNet18,
            CompressionSpec {
                layers_removed: 5,
                input_resolution: 56,
            },
        )
    }

    /// How many times cheaper one inference of this model is than the
    /// ground-truth CNN.
    pub fn cheapness(&self) -> f64 {
        self.architecture.base_cheapness() * self.compression.cost_reduction()
    }

    /// Rank quality in `(0, 1]`; drives the top-K error model.
    pub fn rank_quality(&self) -> f64 {
        (self.architecture.base_rank_quality() * self.compression.quality_retention())
            .clamp(0.05, 1.0)
    }

    /// Display name, e.g. `ResNet18-3L@112px`.
    pub fn display_name(&self) -> String {
        if self.compression == CompressionSpec::NONE {
            self.architecture.name().to_string()
        } else {
            format!("{}{}", self.architecture.name(), self.compression)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_is_unit_cost() {
        let gt = ModelSpec::ground_truth();
        assert!((gt.cheapness() - 1.0).abs() < 1e-9);
        assert!((gt.rank_quality() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_cheap_cnns_match_paper_factors() {
        // Figure 5 annotates the three cheap models as 7×, 28× and 58×
        // cheaper than ResNet152. The calibrated cost model must land close.
        let c1 = ModelSpec::cheap_cnn_1().cheapness();
        let c2 = ModelSpec::cheap_cnn_2().cheapness();
        let c3 = ModelSpec::cheap_cnn_3().cheapness();
        assert!((6.0..=9.0).contains(&c1), "CheapCNN1 cheapness {c1}");
        assert!((22.0..=34.0).contains(&c2), "CheapCNN2 cheapness {c2}");
        assert!((48.0..=70.0).contains(&c3), "CheapCNN3 cheapness {c3}");
        assert!(c1 < c2 && c2 < c3);
    }

    #[test]
    fn cheaper_models_have_lower_rank_quality() {
        let q1 = ModelSpec::cheap_cnn_1().rank_quality();
        let q2 = ModelSpec::cheap_cnn_2().rank_quality();
        let q3 = ModelSpec::cheap_cnn_3().rank_quality();
        assert!(q1 > q2 && q2 > q3, "{q1} {q2} {q3}");
        assert!(q3 > 0.3);
    }

    #[test]
    fn architectures_ordered_by_cheapness_and_quality() {
        let all = Architecture::all();
        for pair in all.windows(2) {
            assert!(pair[0].base_cheapness() <= pair[1].base_cheapness());
            assert!(pair[0].base_rank_quality() >= pair[1].base_rank_quality());
        }
    }

    #[test]
    fn compression_none_is_identity() {
        assert!((CompressionSpec::NONE.cost_reduction() - 1.0).abs() < 1e-9);
        assert!((CompressionSpec::NONE.quality_retention() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_compression_is_cheaper_and_worse() {
        let light = CompressionSpec {
            layers_removed: 1,
            input_resolution: 224,
        };
        let heavy = CompressionSpec {
            layers_removed: 5,
            input_resolution: 56,
        };
        assert!(heavy.cost_reduction() > light.cost_reduction());
        assert!(heavy.quality_retention() < light.quality_retention());
        assert!(heavy.quality_retention() > 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelSpec::ground_truth().display_name(), "ResNet152");
        assert_eq!(ModelSpec::cheap_cnn_2().display_name(), "ResNet18-3L@112px");
        assert_eq!(Architecture::AlexNet.to_string(), "AlexNet");
    }

    #[test]
    fn tiny_resolution_does_not_divide_by_zero() {
        let spec = CompressionSpec {
            layers_removed: 0,
            input_resolution: 0,
        };
        assert!(spec.cost_reduction().is_finite());
        assert!(spec.quality_retention() > 0.0);
    }
}
