//! GPU-time cost model.
//!
//! Both metrics the paper reports — ingest cost and query latency — are GPU
//! time spent in CNN inference (§6.1 explicitly excludes CPU time for
//! decoding, background subtraction and index I/O). This module provides the
//! unit of account: [`GpuCost`], seconds of GPU time on the reference
//! accelerator.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

use serde::{Deserialize, Serialize};

/// Throughput of the ground-truth CNN (ResNet152) on the reference GPU:
/// 77 images per second on an NVIDIA K80 (§2.1 of the paper).
pub const GT_CNN_IMAGES_PER_SECOND: f64 = 77.0;

/// An amount of GPU time, in seconds on the reference accelerator.
///
/// `GpuCost` is an additive resource: summing the costs of all inferences in
/// a phase gives the phase's GPU cost. Query *latency* is derived from GPU
/// cost by dividing across the GPUs available to the query
/// (see `focus-runtime`).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct GpuCost(pub f64);

impl GpuCost {
    /// Zero GPU time.
    pub const ZERO: GpuCost = GpuCost(0.0);

    /// GPU time of a single ground-truth CNN (ResNet152) inference.
    pub fn gt_inference() -> GpuCost {
        GpuCost(1.0 / GT_CNN_IMAGES_PER_SECOND)
    }

    /// GPU time of one inference of a model that is `cheapness` times
    /// cheaper than the ground-truth CNN.
    ///
    /// # Panics
    ///
    /// Panics if `cheapness` is not strictly positive.
    pub fn inference_with_cheapness(cheapness: f64) -> GpuCost {
        assert!(cheapness > 0.0, "cheapness factor must be positive");
        GpuCost(Self::gt_inference().0 / cheapness)
    }

    /// The raw number of GPU-seconds.
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// GPU time expressed in hours.
    pub fn hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// How many times larger `other` is than `self`; returns infinity when
    /// `self` is zero and `other` is not.
    pub fn ratio_of(self, other: GpuCost) -> f64 {
        if self.0 == 0.0 {
            if other.0 == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            other.0 / self.0
        }
    }

    /// Approximate dollar cost of this much GPU time in a public cloud.
    ///
    /// The paper quotes $250/month for one ResNet152 stream at 30 fps, which
    /// works out to roughly $0.90 per GPU-hour; that rate is used here.
    pub fn dollars(self) -> f64 {
        self.hours() * 0.90
    }
}

impl Add for GpuCost {
    type Output = GpuCost;
    fn add(self, rhs: GpuCost) -> GpuCost {
        GpuCost(self.0 + rhs.0)
    }
}

impl AddAssign for GpuCost {
    fn add_assign(&mut self, rhs: GpuCost) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for GpuCost {
    type Output = GpuCost;
    fn mul(self, rhs: f64) -> GpuCost {
        GpuCost(self.0 * rhs)
    }
}

impl Mul<usize> for GpuCost {
    type Output = GpuCost;
    fn mul(self, rhs: usize) -> GpuCost {
        GpuCost(self.0 * rhs as f64)
    }
}

impl Div<f64> for GpuCost {
    type Output = GpuCost;
    fn div(self, rhs: f64) -> GpuCost {
        GpuCost(self.0 / rhs)
    }
}

impl Sum for GpuCost {
    fn sum<I: Iterator<Item = GpuCost>>(iter: I) -> GpuCost {
        iter.fold(GpuCost::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt_inference_cost_matches_throughput() {
        let cost = GpuCost::gt_inference();
        assert!((cost.seconds() * GT_CNN_IMAGES_PER_SECOND - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cheapness_scales_cost() {
        let cheap = GpuCost::inference_with_cheapness(58.0);
        assert!((GpuCost::gt_inference().seconds() / cheap.seconds() - 58.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cheapness factor must be positive")]
    fn zero_cheapness_panics() {
        let _ = GpuCost::inference_with_cheapness(0.0);
    }

    #[test]
    fn arithmetic_and_sum() {
        let a = GpuCost(1.0);
        let b = GpuCost(2.0);
        assert_eq!((a + b).seconds(), 3.0);
        assert_eq!((a * 4.0).seconds(), 4.0);
        assert_eq!((a * 3usize).seconds(), 3.0);
        assert_eq!((b / 2.0).seconds(), 1.0);
        let total: GpuCost = vec![a, b, GpuCost(0.5)].into_iter().sum();
        assert!((total.seconds() - 3.5).abs() < 1e-12);
        let mut acc = GpuCost::ZERO;
        acc += b;
        assert_eq!(acc.seconds(), 2.0);
    }

    #[test]
    fn ratios_handle_zero() {
        assert_eq!(GpuCost(2.0).ratio_of(GpuCost(10.0)), 5.0);
        assert_eq!(GpuCost::ZERO.ratio_of(GpuCost::ZERO), 1.0);
        assert!(GpuCost::ZERO.ratio_of(GpuCost(1.0)).is_infinite());
    }

    #[test]
    fn dollars_are_proportional_to_hours() {
        let one_hour = GpuCost(3600.0);
        assert!((one_hour.dollars() - 0.90).abs() < 1e-9);
        // A month of 30 fps ingest with motion-filtered frames lands in the
        // same order of magnitude as the paper's $250/month figure.
        let month = GpuCost::gt_inference() * (10.0 * 3600.0 * 24.0 * 30.0);
        assert!(month.dollars() > 50.0 && month.dollars() < 400.0);
    }
}
