//! Feature vectors and their extraction.
//!
//! Focus clusters objects by the feature vector output by the
//! previous-to-last layer of the cheap ingest CNN (§2.1, §4.2). The paper
//! verifies (§2.2.3) that these features are robust: the nearest neighbour
//! of an object in feature space has the same class more than 99% of the
//! time, even with features from the cheap ResNet18.
//!
//! The synthetic extractor reproduces that geometry. Every observation's
//! feature vector is the sum of
//!
//! * a **class-group anchor** (shared by a small group of visually
//!   confusable classes; groups are far apart),
//! * a **class offset** separating confusable classes within a group,
//! * a **track offset** (shared by all observations of one physical object),
//! * an **appearance-pose offset** that stays constant for a dozen or so
//!   consecutive frames and then jumps as the object's appearance drifts
//!   (new angle, lighting), and
//! * **extraction noise** that grows mildly as the extracting model gets
//!   cheaper.
//!
//! Consequently consecutive observations of one object are nearly
//! identical, one object's appearances over time form a handful of nearby
//! "poses", and distinct classes only start to blur together at distances
//! comparable to the pose spread — exactly the structure the clustering
//! threshold `T` navigates (§4.2).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use focus_video::ObjectObservation;

/// Dimensionality of the synthetic feature vectors.
///
/// Real classifier CNNs produce 512–4096-dimensional penultimate features;
/// the clustering behaviour only depends on relative distances, so a smaller
/// dimension keeps the simulation fast without changing the geometry.
pub const FEATURE_DIM: usize = 32;

/// Scale of the class-group anchor component. Classes are organised in
/// small groups of visually confusable classes (car/truck/bus/van, ...);
/// groups are far apart in feature space.
const GROUP_SCALE: f32 = 1.0;
/// Scale of the within-group offset that separates confusable classes from
/// each other. Deliberately small relative to the appearance spread, so an
/// overly large clustering threshold `T` that merges distinct appearances
/// also starts to merge confusable classes — the precision risk §4.2
/// describes.
const CLASS_OFFSET_SCALE: f32 = 0.18;
/// Scale of the per-track offset component: different physical objects of
/// the same class (different cars) are separated, but less than their
/// appearance spread, mirroring how real embeddings of a class overlap.
const TRACK_SCALE: f32 = 0.2;
/// How much appearance drift a track accumulates before its feature vector
/// jumps to a new "appearance pose" (a new lighting/angle regime). One pose
/// lasts roughly a dozen frames, so clusters built at a tight threshold hold
/// tens of observations — the redundancy-elimination granularity the
/// paper's query speed-ups imply.
const DRIFT_POSE_SIZE: f32 = 0.25;
/// Scale of the per-pose appearance offset. Comparable to the inter-track
/// and inter-class spreads, so a clustering threshold loose enough to merge
/// different poses of one object also risks merging confusable classes.
const POSE_SCALE: f32 = 0.7;
/// Number of consecutive class ids that form one visually confusable group.
const CLASS_GROUP_SIZE: u16 = 4;

/// A dense feature vector in `R^FEATURE_DIM`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector(pub Vec<f32>);

impl FeatureVector {
    /// Creates a vector from raw components.
    ///
    /// # Panics
    ///
    /// Panics if the component count differs from [`FEATURE_DIM`].
    pub fn new(values: Vec<f32>) -> Self {
        assert_eq!(values.len(), FEATURE_DIM, "feature dimension mismatch");
        Self(values)
    }

    /// The zero vector.
    pub fn zeros() -> Self {
        Self(vec![0.0; FEATURE_DIM])
    }

    /// Dimensionality of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Euclidean (L2) distance to another vector, the metric Focus clusters
    /// by (§4.2).
    pub fn l2_distance(&self, other: &FeatureVector) -> f32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
    }

    /// Squared L2 distance (cheaper; monotone in the distance).
    pub fn l2_distance_sq(&self, other: &FeatureVector) -> f32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
    }

    /// L2 norm of the vector.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|a| a * a).sum::<f32>().sqrt()
    }

    /// Element-wise addition used for centroid maintenance.
    pub fn add_assign(&mut self, other: &FeatureVector) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// Element-wise scaling used for centroid maintenance.
    pub fn scale(&mut self, factor: f32) {
        for a in &mut self.0 {
            *a *= factor;
        }
    }
}

fn seeded_unit_vector(seed: u64, scale: f32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..FEATURE_DIM)
        .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * scale)
        .collect()
}

fn hash_seed(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Deterministic feature extractor attributed to a specific model.
///
/// `noise` models how much worse a cheaper model's features are; Focus
/// extracts features from the cheap ingest CNN, so its clustering sees the
/// slightly noisier geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Name of the model the features are attributed to (part of the seed so
    /// different models produce different — but internally consistent —
    /// embeddings).
    pub model_name: String,
    /// Standard scale of per-observation extraction noise.
    pub noise: f32,
}

impl FeatureExtractor {
    /// Extractor for a model with the given per-observation noise scale.
    pub fn new(model_name: impl Into<String>, noise: f32) -> Self {
        Self {
            model_name: model_name.into(),
            noise: noise.max(0.0),
        }
    }

    fn model_seed(&self) -> u64 {
        hash_seed(&[0xFEA7, self.model_name.len() as u64, {
            let mut h = DefaultHasher::new();
            self.model_name.hash(&mut h);
            h.finish()
        }])
    }

    /// Extracts the feature vector of one observation.
    pub fn extract(&self, obj: &ObjectObservation) -> FeatureVector {
        let model_seed = self.model_seed();
        let group = obj.true_class.0 / CLASS_GROUP_SIZE;
        let group_anchor =
            seeded_unit_vector(hash_seed(&[model_seed, 0x6409, group as u64]), GROUP_SCALE);
        let class_offset = seeded_unit_vector(
            hash_seed(&[model_seed, 0xC1A55, obj.appearance.class_signature]),
            CLASS_OFFSET_SCALE,
        );
        let track_offset = seeded_unit_vector(
            hash_seed(&[model_seed, 0x7AC4, obj.appearance.track_signature]),
            TRACK_SCALE,
        );
        // The object's current appearance pose: constant for a dozen or so
        // consecutive frames, then jumps as the accumulated drift crosses a
        // pose boundary. Poses stay within a bounded ball around the track,
        // so a track never wanders into another class's region.
        let pose = (obj.appearance.drift / DRIFT_POSE_SIZE).floor() as i64 as u64;
        let pose_offset = seeded_unit_vector(
            hash_seed(&[model_seed, 0xD41F7, obj.appearance.track_signature, pose]),
            POSE_SCALE,
        );
        let noise = seeded_unit_vector(
            hash_seed(&[
                model_seed,
                0x0153,
                obj.appearance.track_signature,
                obj.object_id.0,
            ]),
            self.noise,
        );
        let values: Vec<f32> = (0..FEATURE_DIM)
            .map(|i| {
                group_anchor[i] + class_offset[i] + track_offset[i] + pose_offset[i] + noise[i]
            })
            .collect();
        FeatureVector(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::{Appearance, BoundingBox, ClassId, FrameId, ObjectId, StreamId, TrackId};

    fn obs(object_id: u64, track: u64, class: u64, drift: f32) -> ObjectObservation {
        ObjectObservation {
            object_id: ObjectId(object_id),
            track_id: TrackId(track),
            frame_id: FrameId(object_id),
            stream_id: StreamId(0),
            true_class: ClassId(class as u16),
            bbox: BoundingBox::default(),
            appearance: Appearance {
                track_signature: track.wrapping_mul(0x9E3779B97F4A7C15),
                class_signature: class.wrapping_mul(0xD6E8FEB86659FD93),
                drift,
                pixel_signature: 0,
            },
        }
    }

    #[test]
    fn extraction_is_deterministic() {
        let ex = FeatureExtractor::new("ResNet18", 0.02);
        let a = ex.extract(&obs(1, 10, 3, 0.1));
        let b = ex.extract(&obs(1, 10, 3, 0.1));
        assert_eq!(a, b);
    }

    #[test]
    fn same_track_is_much_closer_than_other_classes() {
        let ex = FeatureExtractor::new("ResNet18", 0.02);
        let a = ex.extract(&obs(1, 10, 3, 0.10));
        let b = ex.extract(&obs(2, 10, 3, 0.11));
        let same_class_other_track = ex.extract(&obs(3, 99, 3, 0.1));
        let other_class = ex.extract(&obs(4, 50, 7, 0.1));
        let d_track = a.l2_distance(&b);
        let d_class = a.l2_distance(&same_class_other_track);
        let d_other = a.l2_distance(&other_class);
        assert!(d_track < d_class, "{d_track} !< {d_class}");
        assert!(d_class < d_other, "{d_class} !< {d_other}");
    }

    #[test]
    fn nearest_neighbour_shares_class_over_99_percent() {
        // §2.2.3: over 99% of nearest-neighbour pairs (by cheap-CNN
        // features) belong to the same class.
        let ex = FeatureExtractor::new("ResNet18", 0.03);
        let mut objects = Vec::new();
        // 40 tracks spread over 8 classes, 5 observations each.
        for track in 0..40u64 {
            let class = track % 8;
            for j in 0..5u64 {
                objects.push(obs(track * 100 + j, track, class, j as f32 * 0.02));
            }
        }
        let feats: Vec<FeatureVector> = objects.iter().map(|o| ex.extract(o)).collect();
        let mut same = 0;
        for (i, fi) in feats.iter().enumerate() {
            let mut best = f32::MAX;
            let mut best_j = usize::MAX;
            for (j, fj) in feats.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = fi.l2_distance(fj);
                if d < best {
                    best = d;
                    best_j = j;
                }
            }
            if objects[i].true_class == objects[best_j].true_class {
                same += 1;
            }
        }
        let fraction = same as f64 / feats.len() as f64;
        assert!(fraction > 0.99, "nearest-neighbour same-class = {fraction}");
    }

    #[test]
    fn cheaper_models_have_noisier_features() {
        let clean = FeatureExtractor::new("ResNet18", 0.01);
        let noisy = FeatureExtractor::new("ResNet18", 0.30);
        let a = obs(1, 10, 3, 0.1);
        let b = obs(2, 10, 3, 0.1);
        let d_clean = clean.extract(&a).l2_distance(&clean.extract(&b));
        let d_noisy = noisy.extract(&a).l2_distance(&noisy.extract(&b));
        assert!(d_noisy > d_clean);
    }

    #[test]
    fn different_models_give_different_embeddings() {
        let a = FeatureExtractor::new("ResNet18", 0.02);
        let b = FeatureExtractor::new("AlexNet", 0.02);
        let o = obs(1, 10, 3, 0.1);
        assert_ne!(a.extract(&o), b.extract(&o));
    }

    #[test]
    fn vector_arithmetic() {
        let mut v = FeatureVector::zeros();
        assert_eq!(v.dim(), FEATURE_DIM);
        let ones = FeatureVector::new(vec![1.0; FEATURE_DIM]);
        v.add_assign(&ones);
        assert_eq!(v, ones);
        v.scale(2.0);
        assert!((v.norm() - (4.0 * FEATURE_DIM as f32).sqrt()).abs() < 1e-4);
        assert!((v.l2_distance(&ones) - (FEATURE_DIM as f32).sqrt()).abs() < 1e-4);
        assert_eq!(v.l2_distance_sq(&ones), FEATURE_DIM as f32);
        assert_eq!(ones.l2_distance(&ones), 0.0);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dimension_panics() {
        let _ = FeatureVector::new(vec![0.0; 3]);
    }
}
