//! The classifier interface, the ground-truth CNN and generic cheap CNNs.
//!
//! The heart of the substitution described in `DESIGN.md`: instead of real
//! CNN inference, classification outcomes are drawn from a calibrated,
//! deterministic error model. What Focus needs from a classifier is
//!
//! * the GPU cost of one inference (from [`crate::architecture::ModelSpec`]),
//! * a ranked list of classes whose *top-K-contains-the-truth* probability
//!   matches the published Figure-5 curves, and
//! * penultimate-layer feature vectors (from [`crate::features`]).
//!
//! Determinism matters: a real frozen model always gives the same answer for
//! the same pixels. The simulation therefore derives every outcome from a
//! hash of (model identity, object appearance), never from global RNG state.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use focus_video::{ClassId, ObjectObservation, NUM_CLASSES};

use crate::architecture::ModelSpec;
use crate::cost::GpuCost;
use crate::features::{FeatureExtractor, FeatureVector};

/// A ranked classification result: classes in decreasing order of
/// confidence, as returned by an image-classification CNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedClasses {
    /// `(class, confidence)` pairs, most confident first.
    pub ranked: Vec<(ClassId, f32)>,
}

impl RankedClasses {
    /// The most confident class.
    pub fn top1(&self) -> Option<ClassId> {
        self.ranked.first().map(|(c, _)| *c)
    }

    /// The classes only, most confident first.
    pub fn classes(&self) -> Vec<ClassId> {
        self.ranked.iter().map(|(c, _)| *c).collect()
    }

    /// Whether `class` appears among the first `k` results.
    pub fn contains_in_top(&self, class: ClassId, k: usize) -> bool {
        self.ranked.iter().take(k).any(|(c, _)| *c == class)
    }

    /// Rank (1-based) of `class`, if present.
    pub fn rank_of(&self, class: ClassId) -> Option<usize> {
        self.ranked
            .iter()
            .position(|(c, _)| *c == class)
            .map(|p| p + 1)
    }
}

/// Common interface of every classifier model in the system (ground truth,
/// generic compressed, specialized).
pub trait Classifier: Send + Sync {
    /// Human-readable model name (used in reports and as part of the
    /// deterministic seed).
    fn name(&self) -> &str;

    /// GPU cost of classifying one object.
    fn cost_per_inference(&self) -> GpuCost;

    /// How many times cheaper one inference is than the ground-truth CNN.
    fn cheapness_vs_gt(&self) -> f64;

    /// Returns the `k` most confident classes for the object.
    fn classify_top_k(&self, obj: &ObjectObservation, k: usize) -> RankedClasses;

    /// Extracts the penultimate-layer feature vector for the object.
    fn extract_features(&self, obj: &ObjectObservation) -> FeatureVector;

    /// Convenience: the single most confident class.
    fn classify_top1(&self, obj: &ObjectObservation) -> ClassId {
        self.classify_top_k(obj, 1).top1().unwrap_or(ClassId(0))
    }
}

/// Calibration of the rank-error model: interpolation points mapping a
/// model's rank quality to `(top1_probability, tail_decay)` so that the
/// resulting recall-vs-K curves match Figure 5 of the paper.
///
/// * `top1_probability` — chance the ground-truth class is the model's
///   top-most answer.
/// * `tail_decay` — geometric decay of the rank when it is not top-most;
///   smaller values push the true class deeper into the ranking, requiring a
///   larger K.
const RANK_CALIBRATION: &[(f64, f64, f64)] = &[
    // (rank_quality, top1_probability, tail_decay)
    (0.40, 0.15, 0.006),
    (0.55, 0.25, 0.009), // ≈ CheapCNN3 (58× cheaper): ~90% recall at K ≈ 200
    (0.68, 0.35, 0.016), // ≈ CheapCNN2 (28× cheaper): ~90% recall at K ≈ 100
    (0.86, 0.45, 0.025), // ≈ CheapCNN1 (7× cheaper):  ~90% recall at K ≈ 60
    (0.97, 0.90, 0.250),
    (1.00, 0.96, 0.600), // the ground-truth model itself
];

/// Maps a rank quality to the `(top1_probability, tail_decay)` pair by
/// piecewise-linear interpolation over the `RANK_CALIBRATION` anchors.
pub fn rank_error_parameters(rank_quality: f64) -> (f64, f64) {
    let q = rank_quality.clamp(RANK_CALIBRATION[0].0, 1.0);
    let mut prev = RANK_CALIBRATION[0];
    for &point in RANK_CALIBRATION.iter() {
        if q <= point.0 {
            let (q0, a0, p0) = prev;
            let (q1, a1, p1) = point;
            if (q1 - q0).abs() < 1e-12 {
                return (a1, p1);
            }
            let t = (q - q0) / (q1 - q0);
            return (a0 + t * (a1 - a0), p0 + t * (p1 - p0));
        }
        prev = point;
    }
    let last = RANK_CALIBRATION[RANK_CALIBRATION.len() - 1];
    (last.1, last.2)
}

fn hash64(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    for p in parts {
        p.hash(&mut h);
    }
    h.finish()
}

/// Uniform `[0, 1)` value derived from a hash.
fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn name_seed(name: &str) -> u64 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

/// Appearance drift bucket used to keep classification outcomes stable for
/// near-identical observations of the same object while letting them change
/// as the object's appearance drifts (§2.2.3).
fn drift_bucket(drift: f32) -> u64 {
    // One bucket corresponds to roughly one second of accumulated
    // appearance drift: the same physical object keeps (or misses) its
    // classification for about a second at a time, so errors are correlated
    // across the near-duplicate observations the way a real frozen model's
    // errors are.
    (drift / 0.6).floor() as u64
}

/// The confusion sequence for one classification: the plausible-but-wrong
/// classes a model ranks highly when it is unsure.
///
/// Roughly a quarter of the filler slots are "neighbouring" classes
/// (visually similar classes occupy nearby ids in the synthetic label
/// space), the rest are drawn pseudo-randomly from the full label space. The
/// sequence is deterministic per `(true class, slot, seed)` but varies
/// between observations (the seed includes the object), so a wrong class
/// appears in another class's top-K with a realistic probability rather
/// than always or never.
pub fn confusion_class(true_class: ClassId, slot: usize, seed: u64) -> ClassId {
    let base = true_class.0 as i32;
    let h = hash64(&[seed, 0xC0FF_E77E, true_class.0 as u64, slot as u64]);
    if h.is_multiple_of(4) {
        let offsets = [1i32, -1, 2, -2, 3, -3, 4, 5];
        // Clamp (rather than wrap) at the label-space edges so confusions
        // stay in the visually similar neighbourhood.
        let cand = (base + offsets[((h >> 3) % 8) as usize]).clamp(0, NUM_CLASSES as i32 - 1);
        return ClassId(cand as u16);
    }
    ClassId(((h >> 5) % NUM_CLASSES as u64) as u16)
}

/// Builds the ranked output list for an object given the rank at which the
/// ground-truth class must appear (`usize::MAX` places it beyond every
/// returned slot).
fn build_ranked(
    true_class: ClassId,
    true_rank: usize,
    k: usize,
    fill_seed: u64,
    confidence_seed: u64,
) -> RankedClasses {
    let mut ranked = Vec::with_capacity(k);
    let mut slot = 0usize;
    let mut filler = 0usize;
    while ranked.len() < k {
        let position = ranked.len() + 1;
        let class = if position == true_rank {
            true_class
        } else {
            // Skip filler entries that collide with the true class so it
            // appears exactly once.
            let mut cand = confusion_class(true_class, filler, fill_seed);
            filler += 1;
            while cand == true_class || ranked.iter().any(|(c, _)| *c == cand) {
                cand = confusion_class(true_class, filler, fill_seed);
                filler += 1;
            }
            cand
        };
        let noise = unit_from_hash(hash64(&[confidence_seed, position as u64])) as f32;
        let confidence = (1.0 / position as f32) * (0.85 + 0.15 * noise);
        ranked.push((class, confidence));
        slot += 1;
        if slot > k + 16 {
            break;
        }
    }
    RankedClasses { ranked }
}

/// The ground-truth CNN (ResNet152 in the paper).
///
/// Focus treats its output as the accuracy baseline. Like the real model it
/// is imperfect in a specific way the paper calls out (§6.1): it can give
/// different answers for the same object in consecutive frames. That flicker
/// is reproduced here (a small per-frame chance of answering with a
/// confusable class) so the one-second ground-truth smoothing rule has real
/// work to do.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruthCnn {
    name: String,
    flicker_probability: f64,
    features: FeatureExtractor,
}

impl Default for GroundTruthCnn {
    fn default() -> Self {
        Self::resnet152()
    }
}

impl GroundTruthCnn {
    /// The default ground-truth model, ResNet152.
    pub fn resnet152() -> Self {
        Self {
            name: "ResNet152".to_string(),
            flicker_probability: 0.02,
            features: FeatureExtractor::new("ResNet152", 0.01),
        }
    }

    /// A ground-truth model with a custom per-frame flicker probability
    /// (used by tests).
    pub fn with_flicker(flicker_probability: f64) -> Self {
        Self {
            name: "ResNet152".to_string(),
            flicker_probability: flicker_probability.clamp(0.0, 1.0),
            features: FeatureExtractor::new("ResNet152", 0.01),
        }
    }

    /// Classifies a batch of objects in one GPU submission, returning the
    /// top-1 class of each object in input order.
    ///
    /// The *labels* are identical to calling
    /// [`classify_top1`](Classifier::classify_top1) per object — batching
    /// changes how the GPU is driven, never what the frozen model answers —
    /// but the *cost* of the batch is amortized: per-launch overhead is paid
    /// once per batch instead of once per image (see
    /// `focus_runtime::BatchCostModel`, which converts a batch size into
    /// GPU time). This is the path the query server uses to verify the
    /// deduplicated union of cluster centroids across concurrent queries.
    ///
    /// # Examples
    ///
    /// Batched answers are exactly the serial answers:
    ///
    /// ```
    /// use focus_cnn::{Classifier, GroundTruthCnn};
    /// use focus_video::{profile::profile_by_name, VideoDataset};
    ///
    /// let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 10.0);
    /// let objects: Vec<_> = ds.objects().take(16).cloned().collect();
    /// let gt = GroundTruthCnn::resnet152();
    ///
    /// let batched = gt.classify_batch(&objects);
    /// let serial: Vec<_> = objects.iter().map(|o| gt.classify_top1(o)).collect();
    /// assert_eq!(batched, serial);
    /// ```
    ///
    /// An empty batch is a no-op:
    ///
    /// ```
    /// use focus_cnn::GroundTruthCnn;
    ///
    /// let gt = GroundTruthCnn::resnet152();
    /// assert!(gt.classify_batch(&[]).is_empty());
    /// ```
    pub fn classify_batch(&self, objects: &[ObjectObservation]) -> Vec<ClassId> {
        objects.iter().map(|o| self.classify_top1(o)).collect()
    }
}

impl Classifier for GroundTruthCnn {
    fn name(&self) -> &str {
        &self.name
    }

    fn cost_per_inference(&self) -> GpuCost {
        GpuCost::gt_inference()
    }

    fn cheapness_vs_gt(&self) -> f64 {
        1.0
    }

    fn classify_top_k(&self, obj: &ObjectObservation, k: usize) -> RankedClasses {
        let seed = name_seed(&self.name);
        let flicker_roll = unit_from_hash(hash64(&[
            seed,
            0xF11C,
            obj.appearance.track_signature,
            obj.frame_id.0,
        ]));
        let confidence_seed = hash64(&[seed, obj.object_id.0]);
        if flicker_roll < self.flicker_probability {
            // A momentary misclassification: some essentially arbitrary class
            // wins this frame and the true class drops to rank 2. The wrong
            // answer is not systematically the same confusable class — a
            // strong model's rare errors are scattered — which is what the
            // paper's one-second ground-truth smoothing rule absorbs.
            let wrong_raw = hash64(&[seed, 0xF11D, obj.object_id.0]) % NUM_CLASSES as u64;
            let mut wrong = ClassId(wrong_raw as u16);
            if wrong == obj.true_class {
                wrong = ClassId((wrong_raw as u16 + 1) % NUM_CLASSES);
            }
            let mut ranked = build_ranked(
                obj.true_class,
                2,
                k.max(1),
                confidence_seed,
                confidence_seed,
            );
            if let Some(first) = ranked.ranked.first_mut() {
                first.0 = wrong;
            }
            return ranked;
        }
        build_ranked(
            obj.true_class,
            1,
            k.max(1),
            confidence_seed,
            confidence_seed,
        )
    }

    fn extract_features(&self, obj: &ObjectObservation) -> FeatureVector {
        self.features.extract(obj)
    }
}

/// A generic (compressed but not specialized) cheap CNN.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheapCnn {
    spec: ModelSpec,
    name: String,
    top1_probability: f64,
    tail_decay: f64,
    features: FeatureExtractor,
}

impl CheapCnn {
    /// Builds the cheap model described by `spec`.
    pub fn from_spec(spec: ModelSpec) -> Self {
        let name = spec.display_name();
        let (top1_probability, tail_decay) = rank_error_parameters(spec.rank_quality());
        // Cheaper models extract noisier features; the noise stays small
        // enough that nearest neighbours still share classes (§2.2.3).
        let noise = (0.015 + 0.0006 * spec.cheapness()).min(0.08) as f32;
        Self {
            features: FeatureExtractor::new(name.clone(), noise),
            spec,
            name,
            top1_probability,
            tail_decay,
        }
    }

    /// CheapCNN1 of Figure 5 (≈7× cheaper than the ground truth).
    pub fn cheap_cnn_1() -> Self {
        Self::from_spec(ModelSpec::cheap_cnn_1())
    }

    /// CheapCNN2 of Figure 5 (≈28× cheaper).
    pub fn cheap_cnn_2() -> Self {
        Self::from_spec(ModelSpec::cheap_cnn_2())
    }

    /// CheapCNN3 of Figure 5 (≈58× cheaper).
    pub fn cheap_cnn_3() -> Self {
        Self::from_spec(ModelSpec::cheap_cnn_3())
    }

    /// The model spec this cheap CNN was built from.
    pub fn spec(&self) -> ModelSpec {
        self.spec
    }

    /// The calibrated rank-error parameters `(top1_probability, tail_decay)`.
    pub fn rank_parameters(&self) -> (f64, f64) {
        (self.top1_probability, self.tail_decay)
    }

    /// The rank at which the ground-truth class appears in this model's
    /// output for `obj`. Deterministic per (model, track, drift bucket).
    fn true_class_rank(&self, obj: &ObjectObservation) -> usize {
        let seed = name_seed(&self.name);
        let key = hash64(&[
            seed,
            0x4A4E,
            obj.appearance.track_signature,
            drift_bucket(obj.appearance.drift),
        ]);
        let u = unit_from_hash(key);
        if u < self.top1_probability {
            return 1;
        }
        // Geometric tail: deeper ranks for cheaper models.
        let v = unit_from_hash(hash64(&[key, 0x7A11]));
        let decay = self.tail_decay.clamp(1e-4, 0.999);
        let extra = ((1.0 - v).ln() / (1.0 - decay).ln()).ceil().max(1.0);
        1 + extra as usize
    }
}

impl Classifier for CheapCnn {
    fn name(&self) -> &str {
        &self.name
    }

    fn cost_per_inference(&self) -> GpuCost {
        GpuCost::inference_with_cheapness(self.spec.cheapness())
    }

    fn cheapness_vs_gt(&self) -> f64 {
        self.spec.cheapness()
    }

    fn classify_top_k(&self, obj: &ObjectObservation, k: usize) -> RankedClasses {
        let seed = name_seed(&self.name);
        let rank = self.true_class_rank(obj);
        let confidence_seed = hash64(&[seed, obj.object_id.0]);
        build_ranked(
            obj.true_class,
            rank,
            k.max(1),
            confidence_seed,
            confidence_seed,
        )
    }

    fn extract_features(&self, obj: &ObjectObservation) -> FeatureVector {
        self.features.extract(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use focus_video::{profile, VideoDataset};

    fn sample_objects(n: usize) -> Vec<ObjectObservation> {
        let ds = VideoDataset::generate(profile::profile_by_name("lausanne").unwrap(), 600.0);
        ds.objects().take(n).cloned().collect()
    }

    fn recall_at_k(model: &dyn Classifier, objects: &[ObjectObservation], k: usize) -> f64 {
        let hit = objects
            .iter()
            .filter(|o| model.classify_top_k(o, k).contains_in_top(o.true_class, k))
            .count();
        hit as f64 / objects.len() as f64
    }

    #[test]
    fn ground_truth_is_almost_always_right() {
        let gt = GroundTruthCnn::resnet152();
        let objects = sample_objects(2000);
        let correct = objects
            .iter()
            .filter(|o| gt.classify_top1(o) == o.true_class)
            .count();
        let accuracy = correct as f64 / objects.len() as f64;
        assert!(accuracy > 0.93, "GT top-1 accuracy = {accuracy}");
        assert!(accuracy < 1.0, "GT should flicker occasionally");
    }

    #[test]
    fn ground_truth_without_flicker_is_perfect() {
        let gt = GroundTruthCnn::with_flicker(0.0);
        let objects = sample_objects(500);
        assert!(objects.iter().all(|o| gt.classify_top1(o) == o.true_class));
    }

    #[test]
    fn classification_is_deterministic() {
        let cheap = CheapCnn::cheap_cnn_2();
        let objects = sample_objects(50);
        for o in &objects {
            assert_eq!(cheap.classify_top_k(o, 30), cheap.classify_top_k(o, 30));
        }
    }

    #[test]
    fn ranked_output_has_unique_classes_and_descending_confidence() {
        let cheap = CheapCnn::cheap_cnn_1();
        let objects = sample_objects(20);
        for o in &objects {
            let out = cheap.classify_top_k(o, 50);
            assert_eq!(out.ranked.len(), 50);
            let mut seen = std::collections::HashSet::new();
            for (c, _) in &out.ranked {
                assert!(seen.insert(*c), "duplicate class in ranked output");
            }
            for w in out.ranked.windows(2) {
                assert!(w[0].1 >= w[1].1 * 0.5, "confidences roughly descend");
            }
        }
    }

    #[test]
    fn recall_grows_with_k_and_with_model_quality() {
        // The qualitative content of Figure 5.
        let objects = sample_objects(3000);
        let c1 = CheapCnn::cheap_cnn_1();
        let c2 = CheapCnn::cheap_cnn_2();
        let c3 = CheapCnn::cheap_cnn_3();
        for model in [&c1, &c2, &c3] {
            let r10 = recall_at_k(model, &objects, 10);
            let r60 = recall_at_k(model, &objects, 60);
            let r200 = recall_at_k(model, &objects, 200);
            assert!(
                r10 < r60 && r60 < r200,
                "{}: {r10} {r60} {r200}",
                model.name()
            );
        }
        // At equal K, the more expensive model has better recall.
        let k = 60;
        assert!(recall_at_k(&c1, &objects, k) > recall_at_k(&c2, &objects, k));
        assert!(recall_at_k(&c2, &objects, k) > recall_at_k(&c3, &objects, k));
    }

    #[test]
    fn recall_calibration_matches_figure5_anchors() {
        let objects = sample_objects(4000);
        // CheapCNN1 reaches ~90% recall at K = 60, CheapCNN2 at K = 100,
        // CheapCNN3 at K = 200 (Figure 5). Allow a generous band — the
        // claim is about shape, not the third decimal.
        let r1 = recall_at_k(&CheapCnn::cheap_cnn_1(), &objects, 60);
        let r2 = recall_at_k(&CheapCnn::cheap_cnn_2(), &objects, 100);
        let r3 = recall_at_k(&CheapCnn::cheap_cnn_3(), &objects, 200);
        for (name, r) in [
            ("CheapCNN1@60", r1),
            ("CheapCNN2@100", r2),
            ("CheapCNN3@200", r3),
        ] {
            assert!((0.82..=0.97).contains(&r), "{name}: recall {r}");
        }
    }

    #[test]
    fn cheap_models_cost_less() {
        let gt = GroundTruthCnn::resnet152();
        let c3 = CheapCnn::cheap_cnn_3();
        assert!(c3.cost_per_inference() < gt.cost_per_inference());
        assert!(c3.cheapness_vs_gt() > 40.0);
        assert_eq!(gt.cheapness_vs_gt(), 1.0);
    }

    #[test]
    fn rank_error_interpolation_is_monotone() {
        let mut prev = rank_error_parameters(0.40);
        for q in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let cur = rank_error_parameters(q);
            assert!(cur.0 >= prev.0, "top1 probability must not decrease");
            assert!(cur.1 >= prev.1, "tail decay must not decrease");
            prev = cur;
        }
        // Out-of-range queries clamp.
        assert_eq!(rank_error_parameters(0.0), rank_error_parameters(0.40));
        assert_eq!(rank_error_parameters(2.0), rank_error_parameters(1.0));
    }

    #[test]
    fn ranked_classes_helpers() {
        let rc = RankedClasses {
            ranked: vec![(ClassId(5), 0.9), (ClassId(2), 0.5), (ClassId(7), 0.1)],
        };
        assert_eq!(rc.top1(), Some(ClassId(5)));
        assert_eq!(rc.classes(), vec![ClassId(5), ClassId(2), ClassId(7)]);
        assert!(rc.contains_in_top(ClassId(2), 2));
        assert!(!rc.contains_in_top(ClassId(7), 2));
        assert_eq!(rc.rank_of(ClassId(7)), Some(3));
        assert_eq!(rc.rank_of(ClassId(9)), None);
        let empty = RankedClasses { ranked: vec![] };
        assert_eq!(empty.top1(), None);
    }

    #[test]
    fn classify_batch_matches_serial_classification() {
        let gt = GroundTruthCnn::resnet152();
        let objects = sample_objects(200);
        let batched = gt.classify_batch(&objects);
        assert_eq!(batched.len(), objects.len());
        for (obj, label) in objects.iter().zip(batched.iter()) {
            assert_eq!(*label, gt.classify_top1(obj));
        }
        assert!(gt.classify_batch(&[]).is_empty());
    }

    #[test]
    fn confusion_sequence_is_deterministic_and_avoidable() {
        let a = confusion_class(ClassId(0), 0, 42);
        let b = confusion_class(ClassId(0), 0, 42);
        assert_eq!(a, b);
        assert_ne!(a, ClassId(0));
        let far = confusion_class(ClassId(0), 20, 42);
        assert!(far.is_valid());
    }
}
