//! Simulated CNN substrate for the Focus reproduction.
//!
//! The paper runs real CNNs (ResNet152 as the ground-truth model, ResNet18 /
//! AlexNet / VGG compressions as cheap ingest models, plus per-stream
//! specialized variants) on GPUs. Neither the models nor GPUs are available
//! here, so this crate provides a *calibrated simulation* that reproduces
//! exactly the properties Focus depends on:
//!
//! 1. **A GPU cost model** ([`cost`]): every inference consumes a known
//!    amount of GPU time; ResNet152 processes 77 images/second on an NVIDIA
//!    K80, and each cheap model is characterized by how many times cheaper
//!    it is than that baseline.
//! 2. **A top-K error model** ([`model`]): the ground-truth top-1 class of
//!    an object appears within the top-K output of a cheap model with a
//!    probability that grows with K and shrinks as the model gets cheaper —
//!    the behaviour plotted in Figure 5 of the paper. The model family is
//!    calibrated against the three published points (7×, 28× and 58×
//!    cheaper models reaching ~90% recall at K ≈ 60, 100 and 200).
//! 3. **Per-stream specialization** ([`specialize`]): a model retrained on a
//!    stream's dominant Ls classes (plus an OTHER class) is roughly an order
//!    of magnitude cheaper again and needs only K = 2–4 (§4.3).
//! 4. **Feature vectors** ([`features`]): the penultimate-layer features of
//!    visually similar objects are close in L2 distance; nearest neighbours
//!    share a class >99% of the time (§2.2.3), which is what makes
//!    ingest-time clustering work.
//!
//! All classification outcomes are deterministic functions of (model,
//! object appearance), so repeated runs — and in particular running the
//! ground-truth CNN at ingest time for a baseline and at query time for
//! Focus — agree with each other, just as a real frozen model would.

pub mod architecture;
pub mod cost;
pub mod features;
pub mod model;
pub mod specialize;
pub mod zoo;

pub use architecture::{Architecture, CompressionSpec, ModelSpec};
pub use cost::{GpuCost, GT_CNN_IMAGES_PER_SECOND};
pub use features::{FeatureExtractor, FeatureVector, FEATURE_DIM};
pub use model::{CheapCnn, Classifier, GroundTruthCnn, RankedClasses};
pub use specialize::{SpecializedCnn, OTHER_CLASS};
pub use zoo::ModelZoo;
