//! Synthetic video stream substrate for the Focus reproduction.
//!
//! The Focus paper (OSDI'18) evaluates on 13 real video streams from traffic
//! cameras, surveillance cameras and news channels. Those streams are not
//! available here, so this crate provides a *statistically faithful*
//! substitute: a synthetic stream generator whose output reproduces the
//! properties the paper itself measures and relies on (§2.2 of the paper):
//!
//! 1. One-third to one-half of frames contain no moving objects.
//! 2. Each stream only contains a limited subset of the 1,000 recognizable
//!    object classes, and a handful of classes dominate (3%–10% of classes
//!    cover ≥95% of the objects).
//! 3. Objects persist across frames for seconds (a pedestrian takes a minute
//!    to cross the street), so consecutive observations of the same object
//!    are near-duplicates.
//!
//! Everything downstream — cheap-CNN indexing, top-K selection, clustering,
//! the ingest/query cost trade-off — only depends on these distributions, so
//! a generator calibrated to them exercises the same design space as the
//! real videos.
//!
//! The crate exposes:
//!
//! * [`ClassId`] / [`ClassRegistry`] — the 1,000-class label space.
//! * [`StreamProfile`] — per-stream workload description, with the 13
//!   built-in profiles of Table 1 in [`profile`].
//! * [`VideoStream`] / [`VideoDataset`] — frame/object/track generation and
//!   materialized datasets with characterization helpers (Figure 3, §2.2).
//! * [`motion`] — background-subtraction-style motion filtering and pixel
//!   differencing.
//! * [`sampling`] — frame-rate subsampling (30/10/5/1 fps, §6.6).

pub mod class;
pub mod dataset;
pub mod motion;
pub mod profile;
pub mod sampling;
pub mod stream;
pub mod types;

pub use class::{ClassId, ClassRegistry, NUM_CLASSES};
pub use dataset::{DatasetStats, TrackTrace, VideoDataset};
pub use motion::{MotionFilter, PixelDiff};
pub use profile::{StreamDomain, StreamProfile};
pub use stream::{StreamGenerator, VideoStream};
pub use types::{
    Appearance, BoundingBox, Frame, FrameId, ObjectId, ObjectObservation, StreamId, TrackId,
};
