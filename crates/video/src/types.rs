//! Core video data types: frames, object observations, tracks and
//! identifiers shared by every crate in the workspace.

use serde::{Deserialize, Serialize};

use crate::class::ClassId;

/// Identifier of a video stream (camera).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u32);

/// Identifier of a frame within a stream (frame index since stream start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FrameId(pub u64);

impl FrameId {
    /// Wall-clock timestamp of this frame, in seconds since stream start,
    /// given the stream's frame rate.
    pub fn timestamp_secs(self, fps: u32) -> f64 {
        self.0 as f64 / fps.max(1) as f64
    }
}

/// Identifier of a detected moving object (a single observation in a single
/// frame). Globally unique: the generator namespaces ids by stream (stream
/// id in the high bits), so observations from different cameras can share
/// one map without colliding.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectId(pub u64);

/// Identifier of a *track*: the same physical object observed across
/// multiple consecutive frames (e.g. one car crossing the intersection).
///
/// Track ids are stream-local (every stream numbers its tracks from zero),
/// so cross-stream code must qualify them with the stream — the index layer
/// does this with its `TrackKey`. The generator owns track *identity*: it
/// assigns the id when it synthesizes an object's dwell through the scene,
/// standing in for the real system's ingest-time tracker (background
/// subtraction + association), which the paper treats as given. The Focus
/// pipelines consume the id at seal time to fold each observation's
/// position into its track's spatio-temporal sketch; the ground-truth
/// oracle and tests also read it to reconstruct whole trajectories.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrackId(pub u64);

/// Axis-aligned bounding box of a detected object, in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct BoundingBox {
    /// Left edge, pixels from the frame's left border.
    pub x: f32,
    /// Top edge, pixels from the frame's top border.
    pub y: f32,
    /// Width in pixels.
    pub width: f32,
    /// Height in pixels.
    pub height: f32,
}

impl BoundingBox {
    /// Area of the box in square pixels.
    pub fn area(&self) -> f32 {
        self.width * self.height
    }

    /// Center of the box in pixels.
    ///
    /// This is *the* position of an observation for track purposes: the
    /// ingest pipeline folds it into track sketches and the brute-force
    /// track scan replays it, so both sides must share one definition.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.x + self.width * 0.5) as f64,
            (self.y + self.height * 0.5) as f64,
        )
    }

    /// Intersection-over-union with another box; 0.0 if they do not overlap.
    pub fn iou(&self, other: &BoundingBox) -> f32 {
        let ix = (self.x + self.width).min(other.x + other.width) - self.x.max(other.x);
        let iy = (self.y + self.height).min(other.y + other.height) - self.y.max(other.y);
        if ix <= 0.0 || iy <= 0.0 {
            return 0.0;
        }
        let inter = ix * iy;
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// Visual appearance description of an object observation.
///
/// This is the synthetic stand-in for the object's pixels. The CNN substrate
/// derives feature vectors and classification outcomes from it, and the
/// pixel-differencing filter compares `pixel_signature`s of consecutive
/// observations. The structure deliberately exposes only what a camera would:
/// nothing here names the true class directly (that lives in
/// [`ObjectObservation::true_class`], which only the ground-truth oracle and
/// the workload generator read).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Appearance {
    /// Stable per-track appearance seed: two observations of the same track
    /// share it, observations of different tracks (even of the same class)
    /// do not.
    pub track_signature: u64,
    /// Per-class appearance seed shared by all objects of the same class.
    pub class_signature: u64,
    /// Frame-to-frame appearance drift within the track, in `[0, 1]`;
    /// grows slowly as the object moves through the scene.
    pub drift: f32,
    /// Quantized pixel content summary used by pixel differencing. Two
    /// observations with close signatures have nearly identical pixels.
    pub pixel_signature: u32,
}

/// A single detected moving object in a single frame.
///
/// This is the unit of work for the entire system: ingest-time CNNs classify
/// observations, the clusterer groups them, the index stores them, and
/// queries return the frames that contain them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectObservation {
    /// Unique id of this observation within its stream.
    pub object_id: ObjectId,
    /// Track this observation belongs to (same physical object over time).
    pub track_id: TrackId,
    /// Frame in which the object was observed.
    pub frame_id: FrameId,
    /// Stream (camera) the observation comes from.
    pub stream_id: StreamId,
    /// Ground-truth class of the object. Only the ground-truth CNN oracle
    /// and evaluation code may consult this; ingest-time models receive a
    /// noisy view derived from [`Appearance`].
    pub true_class: ClassId,
    /// Bounding box of the object in the frame.
    pub bbox: BoundingBox,
    /// Synthetic appearance used by the CNN substrate.
    pub appearance: Appearance,
}

/// A single video frame: its id, timestamp and the moving objects detected
/// in it by background subtraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame index since stream start.
    pub frame_id: FrameId,
    /// Stream the frame belongs to.
    pub stream_id: StreamId,
    /// Wall-clock timestamp in seconds since stream start.
    pub timestamp_secs: f64,
    /// Moving objects detected in this frame. Empty for frames with no
    /// motion (e.g. a garage camera at night).
    pub objects: Vec<ObjectObservation>,
}

impl Frame {
    /// Returns `true` if background subtraction found at least one moving
    /// object in this frame.
    pub fn has_motion(&self) -> bool {
        !self.objects.is_empty()
    }

    /// The one-second segment this frame belongs to, used by the paper's
    /// ground-truth smoothing rule (§6.1).
    pub fn segment(&self, fps: u32) -> u64 {
        self.frame_id.0 / fps.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_id_timestamp() {
        assert_eq!(FrameId(0).timestamp_secs(30), 0.0);
        assert_eq!(FrameId(30).timestamp_secs(30), 1.0);
        assert_eq!(FrameId(45).timestamp_secs(30), 1.5);
        // A zero-fps stream must not divide by zero.
        assert_eq!(FrameId(10).timestamp_secs(0), 10.0);
    }

    #[test]
    fn bounding_box_area_and_iou() {
        let a = BoundingBox {
            x: 0.0,
            y: 0.0,
            width: 10.0,
            height: 10.0,
        };
        let b = BoundingBox {
            x: 5.0,
            y: 5.0,
            width: 10.0,
            height: 10.0,
        };
        let c = BoundingBox {
            x: 100.0,
            y: 100.0,
            width: 5.0,
            height: 5.0,
        };
        assert_eq!(a.area(), 100.0);
        let iou = a.iou(&b);
        assert!(iou > 0.14 && iou < 0.15, "iou = {iou}");
        assert_eq!(a.iou(&c), 0.0);
        // IoU with itself is 1.
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn frame_motion_and_segment() {
        let empty = Frame {
            frame_id: FrameId(75),
            stream_id: StreamId(0),
            timestamp_secs: 2.5,
            objects: vec![],
        };
        assert!(!empty.has_motion());
        assert_eq!(empty.segment(30), 2);
        assert_eq!(empty.segment(0), 75);
    }
}
