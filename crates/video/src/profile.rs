//! Stream profiles: the workload description of a single camera.
//!
//! A [`StreamProfile`] captures the statistical properties the Focus paper
//! measures for its 13 evaluation streams (Table 1 and §2.2): how busy the
//! camera is, what fraction of frames is empty, how many distinct object
//! classes appear, how skewed their frequencies are, and how long objects
//! dwell in the field of view. [`table1_profiles`] provides the 13 built-in
//! profiles used throughout the benchmark harness.

use serde::{Deserialize, Serialize};

use crate::class::NUM_CLASSES;
use crate::types::StreamId;

/// The application domain of a camera, mirroring Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamDomain {
    /// Traffic intersections and road-side cameras.
    Traffic,
    /// Surveillance cameras: plazas, markets, shopping streets.
    Surveillance,
    /// News channels (studio shots, field reports).
    News,
}

impl std::fmt::Display for StreamDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            StreamDomain::Traffic => "Traffic",
            StreamDomain::Surveillance => "Surveillance",
            StreamDomain::News => "News",
        };
        f.write_str(s)
    }
}

/// Statistical description of a single video stream.
///
/// All quantities are the ones the paper reports or relies on; the stream
/// generator ([`crate::stream::StreamGenerator`]) turns a profile into a
/// concrete sequence of frames and object observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Short machine name (e.g. `auburn_c`), matching Table 1.
    pub name: String,
    /// Where the camera is located (informational, Table 1).
    pub location: String,
    /// Free-text description (informational, Table 1).
    pub description: String,
    /// Domain of the camera.
    pub domain: StreamDomain,
    /// Identifier assigned to this stream.
    pub stream_id: StreamId,
    /// Native frame rate of the camera, frames per second.
    pub fps: u32,
    /// Number of distinct object classes that ever appear in the stream.
    /// The paper observes 22%–33% of the 1,000 classes for quiet streams and
    /// 50%–69% for busy news streams (§2.2.2).
    pub distinct_classes: usize,
    /// Zipf skew exponent of the class-frequency distribution. Higher means
    /// a few classes dominate more strongly. The paper observes that 3%–10%
    /// of classes cover ≥95% of objects.
    pub zipf_exponent: f64,
    /// Long-run fraction of frames with no moving objects (1/3–1/2 in the
    /// paper's streams, §2.2.1).
    pub empty_frame_fraction: f64,
    /// Mean number of concurrently visible moving objects during busy
    /// periods.
    pub mean_objects_per_busy_frame: f64,
    /// Mean time an object stays in the camera's view, in seconds.
    pub mean_dwell_secs: f64,
    /// Seed controlling which subset of the label space occurs in this
    /// stream and the per-stream randomness of the generator.
    pub seed: u64,
}

impl StreamProfile {
    /// Total number of frames for a recording of `duration_secs` seconds at
    /// the profile's native frame rate.
    pub fn frames_for_duration(&self, duration_secs: f64) -> u64 {
        (duration_secs * self.fps as f64).round() as u64
    }

    /// Mean dwell time expressed in frames at the native frame rate.
    pub fn mean_dwell_frames(&self) -> f64 {
        (self.mean_dwell_secs * self.fps as f64).max(1.0)
    }

    /// A drifted variant of this stream: the *same camera* (stream id and
    /// frame rate are preserved) whose content statistics have shifted —
    /// the day/night or weekday/weekend class-mix change a long-lived
    /// deployment sees. The palette is rebuilt from a fresh seed under the
    /// given domain, so the dominant classes after the drift genuinely
    /// differ from the ones a model specialized before it was trained on.
    ///
    /// Used together with
    /// [`VideoDataset::continue_with`](crate::VideoDataset::continue_with)
    /// to splice a drifted continuation onto a recording, which is how the
    /// adaptation tests and benches inject distribution shifts.
    pub fn drifted(
        &self,
        name_suffix: &str,
        domain: StreamDomain,
        seed_bump: u64,
    ) -> StreamProfile {
        StreamProfile {
            name: format!("{}-{name_suffix}", self.name),
            domain,
            // A multiplicative odd constant keeps bumped seeds distinct from
            // every built-in profile seed and from other bumps.
            seed: self.seed ^ (seed_bump.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1),
            ..self.clone()
        }
    }

    /// Sanity-checks the profile parameters, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.fps == 0 {
            return Err(format!("stream {}: fps must be positive", self.name));
        }
        if self.distinct_classes == 0 || self.distinct_classes > NUM_CLASSES as usize {
            return Err(format!(
                "stream {}: distinct_classes must be in 1..={NUM_CLASSES}",
                self.name
            ));
        }
        if !(0.0..1.0).contains(&self.empty_frame_fraction) {
            return Err(format!(
                "stream {}: empty_frame_fraction must be in [0, 1)",
                self.name
            ));
        }
        if self.mean_objects_per_busy_frame <= 0.0 {
            return Err(format!(
                "stream {}: mean_objects_per_busy_frame must be positive",
                self.name
            ));
        }
        if self.mean_dwell_secs <= 0.0 {
            return Err(format!(
                "stream {}: mean_dwell_secs must be positive",
                self.name
            ));
        }
        if self.zipf_exponent <= 0.0 {
            return Err(format!(
                "stream {}: zipf_exponent must be positive",
                self.name
            ));
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn profile(
    id: u32,
    name: &str,
    location: &str,
    description: &str,
    domain: StreamDomain,
    distinct_classes: usize,
    zipf_exponent: f64,
    empty_frame_fraction: f64,
    mean_objects_per_busy_frame: f64,
    mean_dwell_secs: f64,
) -> StreamProfile {
    StreamProfile {
        name: name.to_string(),
        location: location.to_string(),
        description: description.to_string(),
        domain,
        stream_id: StreamId(id),
        fps: 30,
        distinct_classes,
        zipf_exponent,
        empty_frame_fraction,
        mean_objects_per_busy_frame,
        mean_dwell_secs,
        // Distinct deterministic seed per stream so datasets are reproducible
        // but streams are not clones of each other.
        seed: 0x70C0_5000 + id as u64 * 0x9E37_79B9,
    }
}

/// The 13 video streams of Table 1 in the paper, expressed as synthetic
/// stream profiles.
///
/// Busy-ness, empty-frame fraction, class diversity and dwell times follow
/// the qualitative description in the paper: busy commercial intersections
/// (`auburn_c`, `city_a_d`, `jacksonh`) see many short-dwell vehicles;
/// residential intersections and road-side cameras are quieter; pedestrian
/// plazas have long dwell times; news channels are busy, class-diverse and
/// dominated by people/studio objects.
pub fn table1_profiles() -> Vec<StreamProfile> {
    vec![
        profile(
            0,
            "auburn_c",
            "AL, USA",
            "A commercial area intersection in the City of Auburn",
            StreamDomain::Traffic,
            260,
            1.95,
            0.33,
            3.0,
            8.0,
        ),
        profile(
            1,
            "auburn_r",
            "AL, USA",
            "A residential area intersection in the City of Auburn",
            StreamDomain::Traffic,
            230,
            2.20,
            0.48,
            1.4,
            9.0,
        ),
        profile(
            2,
            "city_a_d",
            "USA",
            "A downtown intersection in City A",
            StreamDomain::Traffic,
            270,
            1.95,
            0.34,
            3.2,
            7.0,
        ),
        profile(
            3,
            "city_a_r",
            "USA",
            "A residential area intersection in City A",
            StreamDomain::Traffic,
            240,
            2.15,
            0.45,
            1.6,
            8.5,
        ),
        profile(
            4,
            "bend",
            "OR, USA",
            "A road-side camera in the City of Bend",
            StreamDomain::Traffic,
            220,
            2.25,
            0.47,
            1.2,
            6.5,
        ),
        profile(
            5,
            "jacksonh",
            "WY, USA",
            "A busy intersection (Town Square) in Jackson Hole",
            StreamDomain::Traffic,
            280,
            1.90,
            0.33,
            3.5,
            9.0,
        ),
        profile(
            6,
            "church_st",
            "VT, USA",
            "A rotating camera in a shopping mall (Church Street Marketplace)",
            StreamDomain::Surveillance,
            300,
            2.00,
            0.36,
            2.6,
            12.0,
        ),
        profile(
            7,
            "lausanne",
            "Switzerland",
            "A pedestrian plaza (Place de la Palud) in Lausanne",
            StreamDomain::Surveillance,
            250,
            2.15,
            0.44,
            1.8,
            20.0,
        ),
        profile(
            8,
            "oxford",
            "England",
            "A bookshop street in the University of Oxford",
            StreamDomain::Surveillance,
            230,
            2.20,
            0.46,
            1.5,
            15.0,
        ),
        profile(
            9,
            "sittard",
            "Netherlands",
            "A market square in Sittard",
            StreamDomain::Surveillance,
            255,
            2.05,
            0.40,
            2.2,
            18.0,
        ),
        profile(
            10,
            "cnn",
            "USA",
            "News channel",
            StreamDomain::News,
            560,
            1.80,
            0.34,
            3.0,
            10.0,
        ),
        profile(
            11,
            "foxnews",
            "USA",
            "News channel",
            StreamDomain::News,
            540,
            1.82,
            0.35,
            2.8,
            10.0,
        ),
        profile(
            12,
            "msnbc",
            "USA",
            "News channel",
            StreamDomain::News,
            620,
            1.78,
            0.33,
            3.2,
            11.0,
        ),
    ]
}

/// The nine representative streams the paper uses for the component and
/// policy breakdown figures (Figures 8 and 9).
pub fn representative_nine() -> Vec<StreamProfile> {
    let wanted = [
        "auburn_c",
        "city_a_r",
        "jacksonh",
        "church_st",
        "lausanne",
        "sittard",
        "cnn",
        "foxnews",
        "msnbc",
    ];
    table1_profiles()
        .into_iter()
        .filter(|p| wanted.contains(&p.name.as_str()))
        .collect()
}

/// The six streams used for the dataset characterization in §2.2 / Figure 3.
pub fn characterization_six() -> Vec<StreamProfile> {
    let wanted = [
        "auburn_c", "jacksonh", "lausanne", "sittard", "cnn", "msnbc",
    ];
    table1_profiles()
        .into_iter()
        .filter(|p| wanted.contains(&p.name.as_str()))
        .collect()
}

/// Looks up a built-in profile by its Table-1 name.
pub fn profile_by_name(name: &str) -> Option<StreamProfile> {
    table1_profiles().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_profiles_matching_table1() {
        let profiles = table1_profiles();
        assert_eq!(profiles.len(), 13);
        let traffic = profiles
            .iter()
            .filter(|p| p.domain == StreamDomain::Traffic)
            .count();
        let surveillance = profiles
            .iter()
            .filter(|p| p.domain == StreamDomain::Surveillance)
            .count();
        let news = profiles
            .iter()
            .filter(|p| p.domain == StreamDomain::News)
            .count();
        assert_eq!(traffic, 6);
        assert_eq!(surveillance, 4);
        assert_eq!(news, 3);
    }

    #[test]
    fn all_profiles_validate() {
        for p in table1_profiles() {
            p.validate().unwrap();
        }
    }

    #[test]
    fn profiles_have_unique_ids_names_and_seeds() {
        let profiles = table1_profiles();
        let mut ids: Vec<_> = profiles.iter().map(|p| p.stream_id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 13);
        let mut names: Vec<_> = profiles.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 13);
        let mut seeds: Vec<_> = profiles.iter().map(|p| p.seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 13);
    }

    #[test]
    fn empty_frame_fraction_matches_paper_range() {
        // §2.2.1: one-third to one-half of frames have no moving objects.
        for p in table1_profiles() {
            assert!(
                (0.30..=0.50).contains(&p.empty_frame_fraction),
                "{} has empty fraction {}",
                p.name,
                p.empty_frame_fraction
            );
        }
    }

    #[test]
    fn class_diversity_matches_paper_range() {
        // §2.2.2: 22%–33% of classes occur in less busy videos, 50%–69% in
        // busy news videos.
        for p in table1_profiles() {
            let fraction = p.distinct_classes as f64 / 1000.0;
            match p.domain {
                StreamDomain::News => {
                    assert!((0.50..=0.69).contains(&fraction), "{}: {fraction}", p.name)
                }
                _ => assert!((0.20..=0.35).contains(&fraction), "{}: {fraction}", p.name),
            }
        }
    }

    #[test]
    fn representative_and_characterization_subsets() {
        assert_eq!(representative_nine().len(), 9);
        assert_eq!(characterization_six().len(), 6);
        assert!(profile_by_name("auburn_c").is_some());
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn frames_and_dwell_helpers() {
        let p = profile_by_name("auburn_c").unwrap();
        assert_eq!(p.frames_for_duration(60.0), 1800);
        assert!(p.mean_dwell_frames() >= 30.0);
    }

    #[test]
    fn validate_rejects_bad_profiles() {
        let mut p = profile_by_name("auburn_c").unwrap();
        p.fps = 0;
        assert!(p.validate().is_err());
        let mut p = profile_by_name("auburn_c").unwrap();
        p.distinct_classes = 0;
        assert!(p.validate().is_err());
        let mut p = profile_by_name("auburn_c").unwrap();
        p.empty_frame_fraction = 1.0;
        assert!(p.validate().is_err());
        let mut p = profile_by_name("auburn_c").unwrap();
        p.mean_dwell_secs = 0.0;
        assert!(p.validate().is_err());
        let mut p = profile_by_name("auburn_c").unwrap();
        p.zipf_exponent = 0.0;
        assert!(p.validate().is_err());
        let mut p = profile_by_name("auburn_c").unwrap();
        p.mean_objects_per_busy_frame = 0.0;
        assert!(p.validate().is_err());
    }
}
