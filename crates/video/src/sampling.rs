//! Frame-rate subsampling (§6.6 of the paper).
//!
//! A common cost-reduction technique is to process only every n-th frame.
//! The paper studies how Focus behaves at 30, 10, 5 and 1 fps; this module
//! provides the subsampling primitive used by that experiment.

use crate::dataset::VideoDataset;
use crate::types::Frame;

/// Selects frames from `frames` (recorded at `original_fps`) so that the
/// result corresponds to `target_fps`.
///
/// Selection keeps every k-th frame with `k = original_fps / target_fps`
/// (rounded to at least 1), which matches the paper's "periodically select a
/// frame to process" description. Passing `target_fps >= original_fps`
/// returns all frames.
pub fn sample_frames(frames: &[Frame], original_fps: u32, target_fps: u32) -> Vec<Frame> {
    let stride = sample_stride(original_fps, target_fps);
    frames
        .iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0)
        .map(|(_, f)| f.clone())
        .collect()
}

/// The stride between retained frames for a given original and target rate.
pub fn sample_stride(original_fps: u32, target_fps: u32) -> usize {
    if target_fps == 0 {
        return usize::MAX;
    }
    original_fps.max(1).div_ceil(target_fps).max(1) as usize
}

/// Subsamples a full dataset to `target_fps`, preserving profile metadata.
///
/// The returned dataset keeps the original profile (including its native
/// fps) so time-based computations such as one-second ground-truth segments
/// remain anchored to wall-clock time; only the frame list is thinned.
pub fn sample_dataset(dataset: &VideoDataset, target_fps: u32) -> VideoDataset {
    let frames = sample_frames(&dataset.frames, dataset.profile.fps, target_fps);
    VideoDataset::from_frames(dataset.profile.clone(), dataset.duration_secs, frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_by_name;

    #[test]
    fn stride_computation() {
        assert_eq!(sample_stride(30, 30), 1);
        assert_eq!(sample_stride(30, 10), 3);
        assert_eq!(sample_stride(30, 5), 6);
        assert_eq!(sample_stride(30, 1), 30);
        assert_eq!(sample_stride(30, 60), 1);
        assert_eq!(sample_stride(30, 0), usize::MAX);
    }

    #[test]
    fn sampling_reduces_frames_proportionally() {
        let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), 60.0);
        assert_eq!(ds.frames.len(), 1800);
        let at10 = sample_dataset(&ds, 10);
        let at1 = sample_dataset(&ds, 1);
        assert_eq!(at10.frames.len(), 600);
        assert_eq!(at1.frames.len(), 60);
        // Sampling preserves frame identity of the retained frames.
        assert_eq!(at10.frames[0], ds.frames[0]);
        assert_eq!(at10.frames[1], ds.frames[3]);
    }

    #[test]
    fn sampling_at_or_above_native_rate_is_identity() {
        let ds = VideoDataset::generate(profile_by_name("bend").unwrap(), 10.0);
        let sampled = sample_dataset(&ds, 30);
        assert_eq!(sampled.frames.len(), ds.frames.len());
        let oversampled = sample_dataset(&ds, 120);
        assert_eq!(oversampled.frames.len(), ds.frames.len());
    }

    #[test]
    fn sampling_to_zero_fps_keeps_nothing_beyond_first() {
        let ds = VideoDataset::generate(profile_by_name("bend").unwrap(), 5.0);
        let sampled = sample_frames(&ds.frames, 30, 0);
        assert!(sampled.len() <= 1);
    }

    #[test]
    fn sampled_dataset_has_fewer_objects() {
        let ds = VideoDataset::generate(profile_by_name("jacksonh").unwrap(), 120.0);
        let at5 = sample_dataset(&ds, 5);
        assert!(at5.object_count() < ds.object_count());
        assert!(at5.object_count() > 0);
    }
}
