//! Synthetic video stream generation.
//!
//! [`StreamGenerator`] turns a [`StreamProfile`] into an infinite sequence of
//! [`Frame`]s. The generator models:
//!
//! * **Busy/quiet alternation** — a two-state Markov process whose
//!   stationary distribution matches the profile's empty-frame fraction
//!   (§2.2.1 of the paper: one-third to one-half of frames have no moving
//!   objects).
//! * **Object tracks** — each physical object (a car crossing the
//!   intersection, a pedestrian walking a plaza) appears for an
//!   exponentially distributed dwell time and produces one
//!   [`ObjectObservation`] per frame while visible, with slowly drifting
//!   appearance (§2.2.3: consecutive observations are near-duplicates).
//! * **Skewed class mix** — track classes are drawn from a per-stream Zipf
//!   distribution over a per-stream class palette, with domain-typical
//!   classes at the head of the palette (§2.2.2: a handful of classes
//!   dominate, and streams of the same domain share their dominant classes).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::class::{ClassId, ClassRegistry, NUM_CLASSES};
use crate::profile::{StreamDomain, StreamProfile};
use crate::types::{Appearance, BoundingBox, Frame, FrameId, ObjectId, ObjectObservation, TrackId};

/// Width of the synthetic camera frame, in pixels.
pub const FRAME_WIDTH: f32 = 1280.0;
/// Height of the synthetic camera frame, in pixels.
pub const FRAME_HEIGHT: f32 = 720.0;

/// Appearance drift accumulated per frame by a moving object. Chosen so an
/// object's appearance changes noticeably over a few seconds but barely
/// between adjacent frames.
const DRIFT_PER_FRAME: f32 = 0.02;

/// Granularity of the pixel signature: drifts within the same bucket produce
/// identical pixel signatures, which is what lets pixel differencing skip
/// the cheap CNN for near-identical consecutive observations (§4.2).
const PIXEL_SIGNATURE_BUCKET: f32 = 0.035;

/// Average length of a quiet (no moving objects) period, in seconds.
const MEAN_QUIET_PERIOD_SECS: f64 = 20.0;

/// Bit position of the stream id within an [`ObjectId`]: ids are allocated
/// as `stream_id << 40 | per_stream_counter`, making them globally unique
/// across cameras (up to 2^40 objects per stream) so cross-stream maps can
/// key on the object id alone.
const OBJECT_ID_STREAM_SHIFT: u32 = 40;

fn hash2(a: u64, b: u64) -> u64 {
    let mut h = DefaultHasher::new();
    a.hash(&mut h);
    b.hash(&mut h);
    h.finish()
}

/// Classes that are typical for each domain and therefore occupy the head of
/// the Zipf palette (the dominant classes) for streams of that domain.
fn domain_typical_classes(domain: StreamDomain, registry: &ClassRegistry) -> Vec<ClassId> {
    let names: &[&str] = match domain {
        StreamDomain::Traffic => &[
            "car",
            "person",
            "truck",
            "bus",
            "bicycle",
            "van",
            "motorcycle",
            "taxi",
            "traffic_light",
            "police_car",
            "stop_sign",
            "ambulance",
        ],
        StreamDomain::Surveillance => &[
            "person",
            "handbag",
            "backpack",
            "bicycle",
            "dog",
            "stroller",
            "shopping_bag",
            "umbrella",
            "car",
            "bench",
            "suitcase",
            "scooter",
        ],
        StreamDomain::News => &[
            "news_anchor",
            "person",
            "microphone",
            "tv_screen",
            "suit",
            "tie",
            "caption_banner",
            "chart_graphic",
            "flag",
            "podium",
            "studio_desk",
            "car",
        ],
    };
    names
        .iter()
        .filter_map(|n| registry.find(n))
        .collect::<Vec<_>>()
}

/// The per-stream class palette: which classes occur in the stream and in
/// which frequency rank order.
#[derive(Debug, Clone)]
pub struct ClassPalette {
    /// Classes present in the stream, from most to least frequent.
    pub classes: Vec<ClassId>,
    /// Zipf weights aligned with `classes`, normalized to sum to 1.
    pub weights: Vec<f64>,
    cumulative: Vec<f64>,
}

impl ClassPalette {
    /// Builds the palette for a profile: domain-typical classes first (these
    /// become the dominant classes), then a deterministic pseudo-random
    /// selection of additional classes up to `distinct_classes`.
    pub fn for_profile(profile: &StreamProfile) -> Self {
        let registry = ClassRegistry::new();
        let mut rng = StdRng::seed_from_u64(profile.seed ^ 0x0C1A_55E5);
        let mut classes = domain_typical_classes(profile.domain, &registry);
        // Perturb the head mildly (adjacent swaps only) so dominant-class
        // order differs between streams of the same domain while the
        // universally shared classes (person, car, ...) stay near the top.
        // This gives the moderate-but-not-identical class overlap between
        // streams the paper observes (average Jaccard index ≈ 0.46).
        for i in (1..classes.len()).step_by(2) {
            if rng.gen::<f64>() < 0.5 {
                classes.swap(i - 1, i);
            }
        }
        classes.truncate(profile.distinct_classes);
        let mut present: std::collections::HashSet<ClassId> = classes.iter().copied().collect();
        while classes.len() < profile.distinct_classes {
            let c = ClassId(rng.gen_range(0..NUM_CLASSES));
            if present.insert(c) {
                classes.push(c);
            }
        }
        let mut weights: Vec<f64> = (0..classes.len())
            .map(|rank| 1.0 / ((rank + 1) as f64).powf(profile.zipf_exponent))
            .collect();
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self {
            classes,
            weights,
            cumulative,
        }
    }

    /// Draws a class according to the Zipf weights.
    pub fn sample(&self, rng: &mut impl Rng) -> ClassId {
        let u: f64 = rng.gen();
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i,
        };
        self.classes[idx.min(self.classes.len() - 1)]
    }

    /// The `n` most frequent classes of the palette.
    pub fn dominant(&self, n: usize) -> Vec<ClassId> {
        self.classes.iter().take(n).copied().collect()
    }

    /// Smallest number of classes whose combined weight reaches `fraction`
    /// of all objects (e.g. how many classes cover 95% of objects).
    pub fn classes_covering(&self, fraction: f64) -> usize {
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if acc >= fraction {
                return i + 1;
            }
        }
        self.classes.len()
    }
}

/// An active object track inside the generator.
#[derive(Debug, Clone)]
struct ActiveTrack {
    track_id: TrackId,
    class: ClassId,
    track_signature: u64,
    frames_remaining: u64,
    drift: f32,
    x: f32,
    y: f32,
    vx: f32,
    vy: f32,
    width: f32,
    height: f32,
}

/// Deterministic generator of synthetic frames for one stream.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    profile: StreamProfile,
    palette: ClassPalette,
    rng: StdRng,
    next_frame: u64,
    next_track: u64,
    next_object: u64,
    busy: bool,
    active: Vec<ActiveTrack>,
}

impl StreamGenerator {
    /// Creates a generator for `profile`, seeded deterministically from the
    /// profile's seed.
    pub fn new(profile: StreamProfile) -> Self {
        let palette = ClassPalette::for_profile(&profile);
        let rng = StdRng::seed_from_u64(profile.seed);
        // Namespace object ids by stream (stream id in the high bits) so
        // observations from different cameras never collide in cross-stream
        // maps (merged centroid sets, combined indexes).
        let first_object = (profile.stream_id.0 as u64) << OBJECT_ID_STREAM_SHIFT;
        Self {
            profile,
            palette,
            rng,
            next_frame: 0,
            next_track: 0,
            next_object: first_object,
            busy: true,
            active: Vec::new(),
        }
    }

    /// The class palette used by this generator.
    pub fn palette(&self) -> &ClassPalette {
        &self.palette
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &StreamProfile {
        &self.profile
    }

    fn exp_sample(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * mean
    }

    fn poisson_sample(&mut self, lambda: f64) -> u64 {
        // Knuth's algorithm; lambda is small (< ~1) in this workload.
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= self.rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 1000 {
                return k;
            }
        }
    }

    fn step_busy_state(&mut self) {
        let fps = self.profile.fps as f64;
        let quiet_frames = (MEAN_QUIET_PERIOD_SECS * fps).max(1.0);
        let f = self.profile.empty_frame_fraction.clamp(0.01, 0.95);
        // Stationary quiet fraction = quiet_len / (quiet_len + busy_len).
        let busy_frames = (quiet_frames * (1.0 - f) / f).max(1.0);
        if self.busy {
            if self.rng.gen::<f64>() < 1.0 / busy_frames {
                self.busy = false;
            }
        } else if self.rng.gen::<f64>() < 1.0 / quiet_frames {
            self.busy = true;
        }
    }

    fn spawn_tracks(&mut self) {
        if !self.busy {
            return;
        }
        let dwell = self.profile.mean_dwell_frames();
        let lambda = self.profile.mean_objects_per_busy_frame / dwell;
        let n = self.poisson_sample(lambda);
        for _ in 0..n {
            let class = self.palette.sample(&mut self.rng);
            let duration = self.exp_sample(dwell).max(1.0) as u64;
            let track_id = TrackId(self.next_track);
            self.next_track += 1;
            let width = self.rng.gen_range(40.0..220.0);
            let height = self.rng.gen_range(40.0..220.0);
            let track = ActiveTrack {
                track_id,
                class,
                track_signature: hash2(self.profile.seed, track_id.0 ^ 0xBEEF),
                frames_remaining: duration,
                drift: 0.0,
                x: self.rng.gen_range(0.0..FRAME_WIDTH - width),
                y: self.rng.gen_range(0.0..FRAME_HEIGHT - height),
                vx: self.rng.gen_range(-4.0..4.0),
                vy: self.rng.gen_range(-2.0..2.0),
                width,
                height,
            };
            self.active.push(track);
        }
    }

    fn emit_frame(&mut self) -> Frame {
        let frame_id = FrameId(self.next_frame);
        self.next_frame += 1;
        let timestamp = frame_id.timestamp_secs(self.profile.fps);
        let mut objects = Vec::with_capacity(self.active.len());
        let stream_id = self.profile.stream_id;
        for track in &mut self.active {
            let object_id = ObjectId(self.next_object);
            self.next_object += 1;
            let bucket = (track.drift / PIXEL_SIGNATURE_BUCKET) as u32;
            let pixel_signature =
                (hash2(track.track_signature, bucket as u64) & 0xFFFF_FFFF) as u32;
            objects.push(ObjectObservation {
                object_id,
                track_id: track.track_id,
                frame_id,
                stream_id,
                true_class: track.class,
                bbox: BoundingBox {
                    x: track.x.clamp(0.0, FRAME_WIDTH - 1.0),
                    y: track.y.clamp(0.0, FRAME_HEIGHT - 1.0),
                    width: track.width,
                    height: track.height,
                },
                appearance: Appearance {
                    track_signature: track.track_signature,
                    class_signature: hash2(0xC1A5, track.class.0 as u64),
                    drift: track.drift,
                    pixel_signature,
                },
            });
            track.drift += DRIFT_PER_FRAME;
            track.x += track.vx;
            track.y += track.vy;
            track.frames_remaining = track.frames_remaining.saturating_sub(1);
        }
        self.active.retain(|t| t.frames_remaining > 0);
        Frame {
            frame_id,
            stream_id,
            timestamp_secs: timestamp,
            objects,
        }
    }

    /// Generates the next frame of the stream.
    pub fn next_frame(&mut self) -> Frame {
        self.step_busy_state();
        self.spawn_tracks();
        self.emit_frame()
    }

    /// Generates `n` consecutive frames.
    pub fn generate_frames(&mut self, n: u64) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

/// An iterator adapter over [`StreamGenerator`], producing an endless live
/// video stream.
#[derive(Debug, Clone)]
pub struct VideoStream {
    generator: StreamGenerator,
    remaining: Option<u64>,
}

impl VideoStream {
    /// An endless live stream for `profile`.
    pub fn live(profile: StreamProfile) -> Self {
        Self {
            generator: StreamGenerator::new(profile),
            remaining: None,
        }
    }

    /// A recording of fixed duration (in seconds) for `profile`.
    pub fn recording(profile: StreamProfile, duration_secs: f64) -> Self {
        let frames = profile.frames_for_duration(duration_secs);
        Self {
            generator: StreamGenerator::new(profile),
            remaining: Some(frames),
        }
    }

    /// The profile backing this stream.
    pub fn profile(&self) -> &StreamProfile {
        self.generator.profile()
    }

    /// The class palette backing this stream.
    pub fn palette(&self) -> &ClassPalette {
        self.generator.palette()
    }
}

impl Iterator for VideoStream {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        match self.remaining {
            Some(0) => None,
            Some(ref mut n) => {
                *n -= 1;
                Some(self.generator.next_frame())
            }
            None => Some(self.generator.next_frame()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_by_name, table1_profiles};

    fn gen_minutes(name: &str, minutes: f64) -> Vec<Frame> {
        let profile = profile_by_name(name).unwrap();
        VideoStream::recording(profile, minutes * 60.0).collect()
    }

    #[test]
    fn recording_has_expected_frame_count() {
        let frames = gen_minutes("auburn_c", 1.0);
        assert_eq!(frames.len(), 1800);
        assert_eq!(frames[0].frame_id, FrameId(0));
        assert_eq!(frames[1799].frame_id, FrameId(1799));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = gen_minutes("auburn_c", 0.5);
        let b = gen_minutes("auburn_c", 0.5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let a = gen_minutes("auburn_c", 0.5);
        let b = gen_minutes("jacksonh", 0.5);
        let objs_a: usize = a.iter().map(|f| f.objects.len()).sum();
        let objs_b: usize = b.iter().map(|f| f.objects.len()).sum();
        assert_ne!((objs_a, a.len()), (objs_b, 0));
        assert_ne!(a.first().unwrap().stream_id, b.first().unwrap().stream_id);
    }

    #[test]
    fn empty_frame_fraction_is_roughly_respected() {
        for name in ["auburn_c", "auburn_r", "lausanne"] {
            let profile = profile_by_name(name).unwrap();
            let frames = gen_minutes(name, 20.0);
            let empty = frames.iter().filter(|f| !f.has_motion()).count() as f64;
            let fraction = empty / frames.len() as f64;
            let target = profile.empty_frame_fraction;
            assert!(
                (fraction - target).abs() < 0.18,
                "{name}: empty fraction {fraction:.2} vs target {target:.2}"
            );
        }
    }

    #[test]
    fn objects_belong_to_tracks_spanning_frames() {
        let frames = gen_minutes("auburn_c", 2.0);
        let mut per_track: std::collections::HashMap<TrackId, usize> =
            std::collections::HashMap::new();
        for f in &frames {
            for o in &f.objects {
                *per_track.entry(o.track_id).or_default() += 1;
            }
        }
        assert!(!per_track.is_empty());
        let avg = per_track.values().sum::<usize>() as f64 / per_track.len() as f64;
        // Mean dwell is 8 seconds at 30 fps = 240 frames; tracks truncated by
        // the recording end pull the average down, so just check objects
        // clearly persist across many frames.
        assert!(avg > 20.0, "average observations per track = {avg}");
    }

    #[test]
    fn consecutive_observations_share_pixel_signatures_sometimes() {
        let frames = gen_minutes("auburn_c", 2.0);
        let mut prev: std::collections::HashMap<TrackId, u32> = std::collections::HashMap::new();
        let mut same = 0usize;
        let mut total = 0usize;
        for f in &frames {
            for o in &f.objects {
                if let Some(sig) = prev.get(&o.track_id) {
                    total += 1;
                    if *sig == o.appearance.pixel_signature {
                        same += 1;
                    }
                }
                prev.insert(o.track_id, o.appearance.pixel_signature);
            }
        }
        assert!(total > 0);
        let ratio = same as f64 / total as f64;
        assert!(
            ratio > 0.3 && ratio < 0.95,
            "pixel-signature repeat ratio = {ratio}"
        );
    }

    #[test]
    fn object_ids_are_unique() {
        let frames = gen_minutes("cnn", 1.0);
        let mut ids = std::collections::HashSet::new();
        for f in &frames {
            for o in &f.objects {
                assert!(ids.insert(o.object_id), "duplicate object id");
            }
        }
    }

    #[test]
    fn object_ids_are_disjoint_across_streams() {
        // Cross-stream maps (merged centroid sets) key on the object id
        // alone, so ids must never collide between cameras.
        let mut ids = std::collections::HashSet::new();
        for name in ["auburn_c", "city_a_d", "cnn"] {
            for f in &gen_minutes(name, 1.0) {
                for o in &f.objects {
                    assert!(
                        ids.insert(o.object_id),
                        "object id {:?} appears in more than one stream",
                        o.object_id
                    );
                }
            }
        }
    }

    #[test]
    fn palette_respects_distinct_classes_and_weights() {
        for profile in table1_profiles() {
            let palette = ClassPalette::for_profile(&profile);
            assert_eq!(palette.classes.len(), profile.distinct_classes);
            let total: f64 = palette.weights.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            // Dominant classes cover the bulk of objects (power law, §2.2.2).
            let covering95 = palette.classes_covering(0.95);
            assert!(
                covering95 <= profile.distinct_classes / 2,
                "{}: {covering95} classes needed for 95%",
                profile.name
            );
        }
    }

    #[test]
    fn dominant_classes_are_domain_typical() {
        let registry = ClassRegistry::new();
        let traffic = ClassPalette::for_profile(&profile_by_name("auburn_c").unwrap());
        let dominant: Vec<&str> = traffic
            .dominant(5)
            .into_iter()
            .map(|c| registry.label(c))
            .collect::<Vec<_>>();
        let vehicleish = [
            "car",
            "truck",
            "bus",
            "person",
            "bicycle",
            "van",
            "taxi",
            "motorcycle",
            "traffic_light",
            "police_car",
            "stop_sign",
            "ambulance",
        ];
        for d in &dominant {
            assert!(vehicleish.contains(d), "unexpected dominant class {d}");
        }
    }

    #[test]
    fn palette_sampling_follows_rank_order() {
        let profile = profile_by_name("auburn_c").unwrap();
        let palette = ClassPalette::for_profile(&profile);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20000 {
            *counts.entry(palette.sample(&mut rng)).or_insert(0usize) += 1;
        }
        let head = counts.get(&palette.classes[0]).copied().unwrap_or(0);
        let tail = counts
            .get(&palette.classes[palette.classes.len() - 1])
            .copied()
            .unwrap_or(0);
        assert!(head > tail, "head {head} should outnumber tail {tail}");
    }

    #[test]
    fn live_stream_is_endless() {
        let profile = profile_by_name("bend").unwrap();
        let mut stream = VideoStream::live(profile);
        for _ in 0..100 {
            assert!(stream.next().is_some());
        }
    }
}
