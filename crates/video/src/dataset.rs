//! Materialized video datasets and the characterization statistics of §2.2.
//!
//! A [`VideoDataset`] is a recorded slice of one stream: the frames, the
//! objects they contain, and helpers for the statistics the paper reports —
//! class-frequency CDFs (Figure 3), the fraction of empty frames (§2.2.1),
//! dominant classes, and the Jaccard overlap of class sets between streams
//! (§2.2.2).

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::class::ClassId;
use crate::profile::StreamProfile;
use crate::stream::VideoStream;
use crate::types::{Frame, ObjectObservation, StreamId, TrackId};

/// Time-ordered `(timestamp_secs, center_x, center_y)` samples of one
/// track — the exact-evaluation form of a track's raw observations (see
/// [`VideoDataset::track_traces`]).
pub type TrackTrace = Vec<(f64, f64, f64)>;

/// A recorded, materialized slice of a single video stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoDataset {
    /// The stream profile this dataset was generated from.
    pub profile: StreamProfile,
    /// Duration of the recording in seconds.
    pub duration_secs: f64,
    /// All frames of the recording, in order.
    pub frames: Vec<Frame>,
}

/// Summary statistics of a dataset, mirroring what §2.2 of the paper
/// measures on the real videos.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Stream name.
    pub stream: String,
    /// Total number of frames.
    pub frames: usize,
    /// Number of frames with at least one moving object.
    pub frames_with_motion: usize,
    /// Total number of object observations.
    pub objects: usize,
    /// Number of distinct object tracks.
    pub tracks: usize,
    /// Number of distinct classes observed.
    pub distinct_classes: usize,
    /// Fraction of frames with no moving objects.
    pub empty_frame_fraction: f64,
    /// Smallest number of classes covering 95% of all object observations.
    pub classes_covering_95pct: usize,
    /// Most frequent classes, most frequent first.
    pub dominant_classes: Vec<ClassId>,
}

impl VideoDataset {
    /// Records `duration_secs` seconds of the stream described by `profile`.
    pub fn generate(profile: StreamProfile, duration_secs: f64) -> Self {
        let frames: Vec<Frame> = VideoStream::recording(profile.clone(), duration_secs).collect();
        Self {
            profile,
            duration_secs,
            frames,
        }
    }

    /// Builds a dataset directly from frames (used by frame-sampling and by
    /// tests).
    pub fn from_frames(profile: StreamProfile, duration_secs: f64, frames: Vec<Frame>) -> Self {
        Self {
            profile,
            duration_secs,
            frames,
        }
    }

    /// Splices `tail` onto this recording as a *continuation of the same
    /// stream*: the tail's frame ids, timestamps, object ids and track ids
    /// are rebased past this recording's, producing one contiguous
    /// recording whose statistics shift at the splice point.
    ///
    /// This is the drift-injection primitive: generate the continuation
    /// from a [`StreamProfile::drifted`] variant of the same camera and
    /// splice it on, and every consumer — pipelines, segment clocks
    /// (derived from frame ids), ground-truth labelling — sees a single
    /// stream whose class distribution changed mid-way, with no id
    /// collisions (object ids keep their stream namespace; the counter
    /// part is shifted past this recording's).
    ///
    /// The result keeps this recording's profile (the tail's drifted
    /// profile describes generation, not identity).
    ///
    /// # Panics
    ///
    /// Panics if the two datasets disagree on stream id or frame rate.
    pub fn continue_with(&self, tail: &VideoDataset) -> VideoDataset {
        assert_eq!(
            self.profile.stream_id, tail.profile.stream_id,
            "a continuation must belong to the same stream"
        );
        assert_eq!(
            self.profile.fps, tail.profile.fps,
            "a continuation must keep the stream's frame rate"
        );
        let frame_offset = self
            .frames
            .iter()
            .map(|f| f.frame_id.0 + 1)
            .max()
            .unwrap_or(0);
        let object_offset = self
            .objects()
            .map(|o| o.object_id.0 + 1)
            .max()
            .unwrap_or(0)
            .saturating_sub((self.profile.stream_id.0 as u64) << 40);
        let track_offset = self.objects().map(|o| o.track_id.0 + 1).max().unwrap_or(0);
        let fps = self.profile.fps;
        let mut frames = self.frames.clone();
        frames.extend(tail.frames.iter().map(|frame| {
            let frame_id = crate::FrameId(frame.frame_id.0 + frame_offset);
            let mut frame = frame.clone();
            frame.frame_id = frame_id;
            frame.timestamp_secs = frame_id.timestamp_secs(fps);
            for obj in &mut frame.objects {
                obj.frame_id = frame_id;
                obj.object_id = crate::types::ObjectId(obj.object_id.0 + object_offset);
                obj.track_id = crate::types::TrackId(obj.track_id.0 + track_offset);
            }
            frame
        }));
        VideoDataset {
            profile: self.profile.clone(),
            duration_secs: self.duration_secs + tail.duration_secs,
            frames,
        }
    }

    /// Iterates over every object observation in the dataset.
    pub fn objects(&self) -> impl Iterator<Item = &ObjectObservation> {
        self.frames.iter().flat_map(|f| f.objects.iter())
    }

    /// Time-ordered trace of every track: for each `(stream, track)` pair,
    /// the `(timestamp_secs, center_x, center_y)` sequence of its
    /// observations, in frame order.
    ///
    /// This is the brute-force ground truth for track-level queries: it
    /// replays the raw observations with the exact position definition
    /// ([`crate::types::BoundingBox::center`]) and timestamps the ingest
    /// pipeline folds into its track sketches, so a scan over these traces
    /// is the reference any sketch-planned answer must match.
    pub fn track_traces(&self) -> BTreeMap<(StreamId, TrackId), TrackTrace> {
        let mut traces: BTreeMap<(StreamId, TrackId), TrackTrace> = BTreeMap::new();
        for frame in &self.frames {
            for obj in &frame.objects {
                let (cx, cy) = obj.bbox.center();
                traces
                    .entry((obj.stream_id, obj.track_id))
                    .or_default()
                    .push((frame.timestamp_secs, cx, cy));
            }
        }
        traces
    }

    /// Total number of object observations.
    pub fn object_count(&self) -> usize {
        self.frames.iter().map(|f| f.objects.len()).sum()
    }

    /// Number of frames that contain at least one moving object.
    pub fn frames_with_motion(&self) -> usize {
        self.frames.iter().filter(|f| f.has_motion()).count()
    }

    /// Histogram of object observations per class.
    pub fn class_histogram(&self) -> HashMap<ClassId, usize> {
        let mut hist = HashMap::new();
        for obj in self.objects() {
            *hist.entry(obj.true_class).or_insert(0) += 1;
        }
        hist
    }

    /// Set of classes that occur at least once.
    pub fn class_set(&self) -> HashSet<ClassId> {
        self.objects().map(|o| o.true_class).collect()
    }

    /// The `n` most frequent classes, most frequent first.
    pub fn dominant_classes(&self, n: usize) -> Vec<ClassId> {
        let hist = self.class_histogram();
        let mut entries: Vec<(ClassId, usize)> = hist.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.into_iter().take(n).map(|(c, _)| c).collect()
    }

    /// Cumulative distribution of class frequency: element `i` is the
    /// fraction of all object observations covered by the `i+1` most
    /// frequent classes. This is the curve plotted in Figure 3.
    pub fn class_frequency_cdf(&self) -> Vec<f64> {
        let hist = self.class_histogram();
        let mut counts: Vec<usize> = hist.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut cdf = Vec::with_capacity(counts.len());
        let mut acc = 0usize;
        for c in counts {
            acc += c;
            cdf.push(acc as f64 / total as f64);
        }
        cdf
    }

    /// Smallest number of classes whose observations cover `fraction` of all
    /// objects.
    pub fn classes_covering(&self, fraction: f64) -> usize {
        self.class_frequency_cdf()
            .iter()
            .position(|&c| c >= fraction)
            .map(|i| i + 1)
            .unwrap_or(0)
    }

    /// Summary statistics for this dataset.
    pub fn stats(&self) -> DatasetStats {
        let tracks: HashSet<_> = self.objects().map(|o| o.track_id).collect();
        let frames_with_motion = self.frames_with_motion();
        DatasetStats {
            stream: self.profile.name.clone(),
            frames: self.frames.len(),
            frames_with_motion,
            objects: self.object_count(),
            tracks: tracks.len(),
            distinct_classes: self.class_set().len(),
            empty_frame_fraction: if self.frames.is_empty() {
                0.0
            } else {
                1.0 - frames_with_motion as f64 / self.frames.len() as f64
            },
            classes_covering_95pct: self.classes_covering(0.95),
            dominant_classes: self.dominant_classes(5),
        }
    }
}

/// Jaccard index (intersection over union) of the class sets of two
/// datasets. The paper reports an average of 0.46 between its streams
/// (§2.2.2), i.e. streams share some classes but differ substantially.
pub fn class_jaccard(a: &VideoDataset, b: &VideoDataset) -> f64 {
    let sa = a.class_set();
    let sb = b.class_set();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Average pairwise Jaccard index across a collection of datasets.
pub fn average_pairwise_jaccard(datasets: &[VideoDataset]) -> f64 {
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..datasets.len() {
        for j in (i + 1)..datasets.len() {
            total += class_jaccard(&datasets[i], &datasets[j]);
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{characterization_six, profile_by_name};

    fn small_dataset(name: &str) -> VideoDataset {
        VideoDataset::generate(profile_by_name(name).unwrap(), 240.0)
    }

    #[test]
    fn dataset_generation_counts() {
        let ds = small_dataset("auburn_c");
        assert_eq!(ds.frames.len(), 7200);
        assert!(ds.object_count() > 1000);
        let stats = ds.stats();
        assert_eq!(stats.frames, 7200);
        assert!(stats.tracks > 10);
        assert!(stats.objects >= stats.tracks);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let ds = small_dataset("jacksonh");
        let cdf = ds.class_frequency_cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn few_classes_cover_most_objects() {
        // Figure 3: a small fraction of classes covers ≥95% of objects. The
        // paper states the fraction relative to the stream's class
        // vocabulary (Table 1's "object classes" column), not the classes
        // that happen to be realized in a short slice — the latter is
        // dominated by track-count variance.
        let ds = small_dataset("auburn_c");
        let covering = ds.classes_covering(0.95);
        let vocabulary = ds.profile.distinct_classes;
        assert!(covering >= 1);
        assert!(
            covering * 4 <= vocabulary,
            "covering {covering} of a {vocabulary}-class vocabulary"
        );
        assert!(covering <= ds.class_set().len());
    }

    #[test]
    fn dominant_classes_are_sorted_by_frequency() {
        let ds = small_dataset("auburn_c");
        let hist = ds.class_histogram();
        let dom = ds.dominant_classes(3);
        assert_eq!(dom.len(), 3);
        assert!(hist[&dom[0]] >= hist[&dom[1]]);
        assert!(hist[&dom[1]] >= hist[&dom[2]]);
    }

    #[test]
    fn jaccard_between_same_dataset_is_one() {
        let ds = small_dataset("cnn");
        assert!((class_jaccard(&ds, &ds) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jaccard_between_different_streams_is_partial() {
        let a = small_dataset("auburn_c");
        let b = small_dataset("lausanne");
        let j = class_jaccard(&a, &b);
        assert!(j > 0.0 && j < 1.0, "jaccard = {j}");
    }

    #[test]
    fn average_pairwise_jaccard_is_moderate() {
        // §2.2.2 reports an average Jaccard index of 0.46 between streams;
        // we only require the same qualitative regime (clearly below 1,
        // clearly above 0).
        let datasets: Vec<VideoDataset> = characterization_six()
            .into_iter()
            .map(|p| VideoDataset::generate(p, 120.0))
            .collect();
        let j = average_pairwise_jaccard(&datasets);
        assert!(j > 0.05 && j < 0.95, "average jaccard = {j}");
    }

    #[test]
    fn drifted_continuation_is_one_contiguous_stream() {
        use crate::profile::StreamDomain;
        let profile = profile_by_name("auburn_c").unwrap();
        let base = VideoDataset::generate(profile.clone(), 60.0);
        let drifted = profile.drifted("night", StreamDomain::News, 7);
        assert_eq!(drifted.stream_id, profile.stream_id);
        assert_eq!(drifted.fps, profile.fps);
        assert_ne!(drifted.seed, profile.seed);
        let tail = VideoDataset::generate(drifted, 60.0);
        let spliced = base.continue_with(&tail);

        assert_eq!(spliced.frames.len(), base.frames.len() + tail.frames.len());
        assert_eq!(
            spliced.object_count(),
            base.object_count() + tail.object_count()
        );
        assert!((spliced.duration_secs - 120.0).abs() < 1e-9);
        // Frame ids are strictly increasing and timestamps follow them.
        for w in spliced.frames.windows(2) {
            assert_eq!(w[1].frame_id.0, w[0].frame_id.0 + 1);
        }
        let last = spliced.frames.last().unwrap();
        assert!((last.timestamp_secs - last.frame_id.timestamp_secs(profile.fps)).abs() < 1e-9);
        // No object or track id collides across the splice, and ids keep
        // the stream namespace.
        let mut ids = HashSet::new();
        for o in spliced.objects() {
            assert!(ids.insert(o.object_id), "object id reused across splice");
            assert_eq!(o.object_id.0 >> 40, profile.stream_id.0 as u64);
            assert_eq!(o.stream_id, profile.stream_id);
        }
        // The class mix genuinely shifts: the halves' dominant classes
        // differ (traffic head vs news head).
        let head_before = base.dominant_classes(3);
        let head_after = tail.dominant_classes(3);
        assert_ne!(head_before, head_after);
    }

    #[test]
    #[should_panic(expected = "same stream")]
    fn continuation_of_a_different_stream_panics() {
        let a = small_dataset("auburn_c");
        let b = small_dataset("lausanne");
        let _ = a.continue_with(&b);
    }

    #[test]
    fn empty_dataset_stats_are_safe() {
        let profile = profile_by_name("bend").unwrap();
        let ds = VideoDataset::from_frames(profile, 0.0, vec![]);
        let stats = ds.stats();
        assert_eq!(stats.frames, 0);
        assert_eq!(stats.objects, 0);
        assert_eq!(stats.empty_frame_fraction, 0.0);
        assert_eq!(ds.classes_covering(0.95), 0);
        assert!(ds.class_frequency_cdf().is_empty());
    }
}
