//! The object-class label space.
//!
//! Focus indexes video by object class. The paper's ground-truth CNN
//! (ResNet152) recognizes the 1,000 ImageNet classes; this module provides
//! an equivalent synthetic label space with the first few dozen classes
//! given meaningful names (the classes that actually dominate traffic,
//! surveillance and news streams) and the rest named generically.

use serde::{Deserialize, Serialize};

/// Number of object classes recognized by the ground-truth CNN.
///
/// Matches the 1,000 ImageNet classes recognized by ResNet152 in the paper.
pub const NUM_CLASSES: u16 = 1000;

/// Identifier of an object class, in `0..NUM_CLASSES`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClassId(pub u16);

impl ClassId {
    /// Returns the raw class index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if the identifier is within the recognized label space.
    pub fn is_valid(self) -> bool {
        self.0 < NUM_CLASSES
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Human-readable names for the well-known classes that dominate the
/// evaluated video domains. Index in this table equals the class id.
const NAMED_CLASSES: &[&str] = &[
    "car",
    "person",
    "truck",
    "bus",
    "bicycle",
    "motorcycle",
    "traffic_light",
    "pedestrian_crossing",
    "van",
    "taxi",
    "dog",
    "stroller",
    "backpack",
    "handbag",
    "suitcase",
    "umbrella",
    "bench",
    "fire_hydrant",
    "stop_sign",
    "parking_meter",
    "news_anchor",
    "microphone",
    "studio_desk",
    "tv_screen",
    "podium",
    "flag",
    "suit",
    "tie",
    "chart_graphic",
    "caption_banner",
    "shopping_bag",
    "shopping_cart",
    "storefront",
    "street_lamp",
    "mailbox",
    "trash_can",
    "scooter",
    "skateboard",
    "wheelchair",
    "delivery_cart",
    "pigeon",
    "cat",
    "horse",
    "boat",
    "train",
    "tram",
    "ambulance",
    "police_car",
    "fire_truck",
    "construction_crane",
];

/// Registry mapping [`ClassId`]s to human-readable labels.
///
/// The registry is cheap to construct and immutable; a single global label
/// space is shared by every stream and CNN model in the system.
#[derive(Debug, Clone)]
pub struct ClassRegistry {
    labels: Vec<String>,
}

impl Default for ClassRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassRegistry {
    /// Builds the standard 1,000-class registry.
    pub fn new() -> Self {
        let mut labels = Vec::with_capacity(NUM_CLASSES as usize);
        for i in 0..NUM_CLASSES {
            let label = match NAMED_CLASSES.get(i as usize) {
                Some(name) => (*name).to_string(),
                None => format!("class_{i:03}"),
            };
            labels.push(label);
        }
        Self { labels }
    }

    /// Number of classes in the registry.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the registry is empty (never the case for the
    /// standard registry).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Returns the label of `class`, or `"<unknown>"` if out of range.
    pub fn label(&self, class: ClassId) -> &str {
        self.labels
            .get(class.index())
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Looks up a class by its label.
    pub fn find(&self, label: &str) -> Option<ClassId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| ClassId(i as u16))
    }

    /// Iterates over all `(ClassId, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (ClassId(i as u16), l.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_one_thousand_classes() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.len(), 1000);
        assert!(!reg.is_empty());
    }

    #[test]
    fn well_known_classes_have_names() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.label(ClassId(0)), "car");
        assert_eq!(reg.label(ClassId(1)), "person");
        assert_eq!(reg.label(ClassId(3)), "bus");
    }

    #[test]
    fn generic_classes_have_generated_names() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.label(ClassId(999)), "class_999");
        assert_eq!(reg.label(ClassId(500)), "class_500");
    }

    #[test]
    fn find_inverts_label() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.find("car"), Some(ClassId(0)));
        assert_eq!(reg.find("class_123"), Some(ClassId(123)));
        assert_eq!(reg.find("no_such_class"), None);
    }

    #[test]
    fn out_of_range_label_is_unknown() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.label(ClassId(5000)), "<unknown>");
        assert!(!ClassId(5000).is_valid());
        assert!(ClassId(999).is_valid());
    }

    #[test]
    fn iter_covers_all_classes() {
        let reg = ClassRegistry::new();
        assert_eq!(reg.iter().count(), 1000);
        let (first_id, first_label) = reg.iter().next().unwrap();
        assert_eq!(first_id, ClassId(0));
        assert_eq!(first_label, "car");
    }

    #[test]
    fn class_id_display() {
        assert_eq!(ClassId(42).to_string(), "class#42");
    }
}
