//! Motion filtering and pixel differencing.
//!
//! The paper's pipeline (and both of its baselines) run background
//! subtraction first so that frames with no moving objects never reach a
//! CNN. [`MotionFilter`] reproduces that pre-filter over synthetic frames.
//!
//! At ingest time Focus additionally applies *pixel differencing* between
//! objects in adjacent frames (§4.2): if two observations have nearly
//! identical pixels, only one of them is run through the cheap CNN and both
//! are placed in the same cluster. [`PixelDiff`] implements that filter over
//! the synthetic pixel signatures.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::types::{Frame, ObjectId, ObjectObservation, TrackId};

/// Statistics produced by the motion filter over a sequence of frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MotionStats {
    /// Frames inspected.
    pub total_frames: usize,
    /// Frames that contained at least one moving object.
    pub frames_with_motion: usize,
    /// Object observations in the retained frames.
    pub objects: usize,
}

impl MotionStats {
    /// Fraction of frames dropped because they contained no motion.
    pub fn dropped_fraction(&self) -> f64 {
        if self.total_frames == 0 {
            0.0
        } else {
            1.0 - self.frames_with_motion as f64 / self.total_frames as f64
        }
    }
}

/// Background-subtraction-style motion filter: drops frames that contain no
/// moving objects.
#[derive(Debug, Clone, Default)]
pub struct MotionFilter {
    stats: MotionStats,
}

impl MotionFilter {
    /// Creates a fresh filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the frame has moving objects and should be
    /// processed further. Updates the running statistics either way.
    pub fn admit(&mut self, frame: &Frame) -> bool {
        self.stats.total_frames += 1;
        if frame.has_motion() {
            self.stats.frames_with_motion += 1;
            self.stats.objects += frame.objects.len();
            true
        } else {
            false
        }
    }

    /// Filters a slice of frames, returning references to the frames with
    /// motion.
    pub fn filter<'a>(&mut self, frames: &'a [Frame]) -> Vec<&'a Frame> {
        frames.iter().filter(|f| self.admit(f)).collect()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> MotionStats {
        self.stats
    }
}

/// Outcome of pixel differencing for one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PixelDiffOutcome {
    /// The object looks new (or changed enough); it must be classified by
    /// the ingest CNN.
    Process,
    /// The object's pixels are nearly identical to a previously processed
    /// observation; reuse that observation's classification and cluster.
    DuplicateOf(ObjectId),
}

/// Pixel-differencing filter over consecutive frames (§4.2, "Pixel
/// Differencing of Objects").
///
/// The filter keeps, per track position in the scene, the pixel signature of
/// the most recent observation that was actually processed by the ingest
/// CNN. A new observation whose signature matches is reported as a
/// duplicate. Real Focus compares raw pixels of objects in adjacent frames;
/// the synthetic pixel signature plays the same role (it changes only when
/// the object's appearance has drifted by more than a quantization bucket).
#[derive(Debug, Clone, Default)]
pub struct PixelDiff {
    last_processed: HashMap<TrackKey, (ObjectId, u32)>,
    duplicates: usize,
    processed: usize,
}

/// Pixel differencing has no access to track identity in the real system; it
/// relates objects by their position in adjacent frames. The synthetic
/// equivalent keys by the coarse spatial cell of the object, which matches
/// "the same region of the frame".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TrackKey {
    cell_x: i32,
    cell_y: i32,
}

const CELL_SIZE: f32 = 160.0;

impl PixelDiff {
    /// Creates a fresh filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decides whether `obj` needs CNN processing or duplicates an earlier
    /// observation.
    pub fn check(&mut self, obj: &ObjectObservation) -> PixelDiffOutcome {
        let key = TrackKey {
            cell_x: (obj.bbox.x / CELL_SIZE) as i32,
            cell_y: (obj.bbox.y / CELL_SIZE) as i32,
        };
        match self.last_processed.get(&key) {
            Some(&(prev_id, prev_sig)) if prev_sig == obj.appearance.pixel_signature => {
                self.duplicates += 1;
                PixelDiffOutcome::DuplicateOf(prev_id)
            }
            _ => {
                self.processed += 1;
                self.last_processed
                    .insert(key, (obj.object_id, obj.appearance.pixel_signature));
                PixelDiffOutcome::Process
            }
        }
    }

    /// Forgets the per-cell last-processed signatures while keeping the
    /// cumulative savings counters. Callers that segment ingest into model
    /// epochs reset the window at each epoch boundary: a duplicate of an
    /// observation from a *previous* epoch could never reuse its
    /// classification anyway (the model may have changed), and dropping the
    /// stale signatures makes the filter's decisions a pure function of the
    /// current epoch's frames — which is what lets a crash-recovered
    /// pipeline replaying its unsealed frames reproduce a never-crashed
    /// pipeline exactly.
    pub fn reset_window(&mut self) {
        self.last_processed.clear();
    }

    /// Number of observations reported as duplicates so far.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// Number of observations that required processing so far.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Fraction of observations skipped thanks to pixel differencing.
    pub fn savings(&self) -> f64 {
        let total = self.duplicates + self.processed;
        if total == 0 {
            0.0
        } else {
            self.duplicates as f64 / total as f64
        }
    }
}

// Tracks are scene positions, so reuse of `TrackId` naming is avoided here;
// the type above is private on purpose.
#[allow(dead_code)]
fn _unused(_: TrackId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_by_name;
    use crate::stream::VideoStream;
    use crate::types::{Appearance, BoundingBox, FrameId, StreamId};
    use crate::ClassId;

    fn obs(id: u64, x: f32, sig: u32) -> ObjectObservation {
        ObjectObservation {
            object_id: ObjectId(id),
            track_id: TrackId(0),
            frame_id: FrameId(id),
            stream_id: StreamId(0),
            true_class: ClassId(0),
            bbox: BoundingBox {
                x,
                y: 0.0,
                width: 50.0,
                height: 50.0,
            },
            appearance: Appearance {
                track_signature: 1,
                class_signature: 2,
                drift: 0.0,
                pixel_signature: sig,
            },
        }
    }

    #[test]
    fn motion_filter_drops_empty_frames() {
        let profile = profile_by_name("auburn_r").unwrap();
        let frames: Vec<Frame> = VideoStream::recording(profile, 300.0).collect();
        let mut filter = MotionFilter::new();
        let kept = filter.filter(&frames);
        let stats = filter.stats();
        assert_eq!(stats.total_frames, frames.len());
        assert_eq!(stats.frames_with_motion, kept.len());
        assert!(stats.dropped_fraction() > 0.1, "{:?}", stats);
        assert!(kept.iter().all(|f| f.has_motion()));
    }

    #[test]
    fn motion_stats_empty() {
        let filter = MotionFilter::new();
        assert_eq!(filter.stats().dropped_fraction(), 0.0);
    }

    #[test]
    fn pixel_diff_detects_identical_signatures() {
        let mut pd = PixelDiff::new();
        assert_eq!(pd.check(&obs(1, 10.0, 42)), PixelDiffOutcome::Process);
        assert_eq!(
            pd.check(&obs(2, 12.0, 42)),
            PixelDiffOutcome::DuplicateOf(ObjectId(1))
        );
        assert_eq!(pd.duplicates(), 1);
        assert_eq!(pd.processed(), 1);
        assert!((pd.savings() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pixel_diff_processes_changed_signatures() {
        let mut pd = PixelDiff::new();
        assert_eq!(pd.check(&obs(1, 10.0, 42)), PixelDiffOutcome::Process);
        assert_eq!(pd.check(&obs(2, 12.0, 43)), PixelDiffOutcome::Process);
        assert_eq!(pd.duplicates(), 0);
    }

    #[test]
    fn pixel_diff_distinguishes_far_apart_objects() {
        let mut pd = PixelDiff::new();
        assert_eq!(pd.check(&obs(1, 10.0, 42)), PixelDiffOutcome::Process);
        // Same signature but a very different scene position: not the same
        // object, must be processed.
        assert_eq!(pd.check(&obs(2, 900.0, 42)), PixelDiffOutcome::Process);
    }

    #[test]
    fn pixel_diff_saves_work_on_real_streams() {
        let profile = profile_by_name("lausanne").unwrap();
        let frames: Vec<Frame> = VideoStream::recording(profile, 120.0).collect();
        let mut pd = PixelDiff::new();
        for f in &frames {
            for o in &f.objects {
                pd.check(o);
            }
        }
        let savings = pd.savings();
        assert!(
            savings > 0.1 && savings < 0.95,
            "pixel differencing savings = {savings}"
        );
    }
}
