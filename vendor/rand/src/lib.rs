//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng`, [`SeedableRng`] and the subset of the [`Rng`]
//! surface the workspace uses (`gen`, `gen_range`, `gen_bool`). The generator
//! is SplitMix64: deterministic, fast, and statistically sound for the
//! synthetic-workload generation this workspace does (it is *not* a
//! cryptographic generator, and neither is the real `StdRng` contract relied
//! on anywhere here).

use std::ops::Range;

/// Values that can be drawn uniformly from the generator's native output
/// (the `Standard` distribution in real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Element types `gen_range` can sample over a half-open range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * f64::draw(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        range.start + (range.end - range.start) * f32::draw(rng)
    }
}

/// The generator trait: one native output method plus the sampling helpers
/// the workspace uses.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically seeded from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let n = rng.gen_range(3u16..17);
            assert!((3..17).contains(&n));
            let f = rng.gen_range(-4.0f32..4.0);
            assert!((-4.0..4.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }
}
