//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the subset of serde the workspace uses under
//! the same names: the [`Serialize`] / [`Deserialize`] traits and the derive
//! macros of the same names (re-exported from `serde_derive`).
//!
//! Instead of serde's visitor-based data model, serialization goes through an
//! explicit [`Value`] tree (null / bool / integer / float / string / array /
//! ordered object), which `serde_json` renders to and parses from JSON text.
//! That keeps the derive macro small while preserving the observable
//! behaviour the workspace depends on: compact JSON, field order following
//! declaration order, externally-tagged enums, `#[serde(default)]` and
//! `#[serde(from = "...", into = "...")]`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped value tree.
///
/// Objects preserve insertion order (fields serialize in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point numbers.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array value, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field by name in an object's entry list.
pub fn get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Error produced when a [`Value`] cannot be decoded into the target type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// The standard "missing field" error.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while decoding {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be encoded into a [`Value`] tree.
pub trait Serialize {
    /// Encodes `self` as a value tree.
    fn serialize(&self) -> Value;
}

/// Types that can be decoded from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Decodes an instance from a value tree.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of i64 range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("integer {raw} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $ty),
                    Value::Int(n) => Ok(*n as $ty),
                    Value::UInt(n) => Ok(*n as $ty),
                    Value::Null => Ok(<$ty>::NAN),
                    other => Err(DeError::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected array for tuple"))?;
                Ok(($($name::deserialize(
                    items.get($idx).ok_or_else(|| DeError::custom("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize(&42u32.serialize()).unwrap(), 42);
        assert_eq!(i64::deserialize(&(-7i64).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(
            String::deserialize(&"hi".to_string().serialize()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::deserialize(&vec![1u8, 2, 3].serialize()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            Option::<u8>::deserialize(&None::<u8>.serialize()).unwrap(),
            None
        );
    }

    #[test]
    fn maps_sort_keys() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let Value::Object(entries) = m.serialize() else {
            panic!("expected object");
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "b");
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::deserialize(&Value::Str("x".into())).is_err());
        assert!(bool::deserialize(&Value::UInt(1)).is_err());
        assert!(String::deserialize(&Value::Null).is_err());
    }
}
