//! Derive macros for the vendored `serde` stand-in.
//!
//! Because the build environment has no crates.io access, `syn`/`quote` are
//! unavailable; the item definition is parsed directly from the
//! `proc_macro::TokenStream` and the trait impls are emitted as source text.
//!
//! Supported shapes (everything the workspace defines):
//!
//! * named-field structs (with `#[serde(default)]` on fields),
//! * tuple structs (single-field newtypes serialize transparently),
//! * enums with unit, tuple and struct variants (externally tagged),
//! * the container attributes `#[serde(from = "T", into = "T")]`.
//!
//! Generic types are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    has_default: bool,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum ItemShape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: ItemShape,
    /// `#[serde(from = "T")]` container attribute.
    from_ty: Option<String>,
    /// `#[serde(into = "T")]` container attribute.
    into_ty: Option<String>,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Consumes leading attributes, returning the arguments of every
    /// `#[serde(...)]` attribute as `(name, optional string value)` pairs.
    fn take_attrs(&mut self) -> Vec<(String, Option<String>)> {
        let mut serde_args = Vec::new();
        while self.is_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde derive: malformed attribute, found {other:?}"),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
            if !is_serde {
                continue;
            }
            let args_group = match inner.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                _ => continue,
            };
            let args: Vec<TokenTree> = args_group.stream().into_iter().collect();
            let mut i = 0;
            while i < args.len() {
                let name = match &args[i] {
                    TokenTree::Ident(id) => id.to_string(),
                    TokenTree::Punct(p) if p.as_char() == ',' => {
                        i += 1;
                        continue;
                    }
                    other => panic!("serde derive: unsupported serde attribute token {other:?}"),
                };
                i += 1;
                let mut value = None;
                if matches!(args.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    match args.get(i) {
                        Some(TokenTree::Literal(lit)) => {
                            value = Some(strip_quotes(&lit.to_string()));
                            i += 1;
                        }
                        other => {
                            panic!("serde derive: expected literal attribute value, got {other:?}")
                        }
                    }
                }
                serde_args.push((name, value));
            }
        }
        serde_args
    }

    /// Consumes an optional visibility qualifier (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if self.is_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Skips a type expression: everything up to a `,` at angle-bracket
    /// depth 0, or the end of the token list.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut p = Parser::new(stream);
    let mut fields = Vec::new();
    while !p.at_end() {
        let attrs = p.take_attrs();
        if p.at_end() {
            break;
        }
        p.skip_visibility();
        let name = p.expect_ident();
        match p.next() {
            Some(TokenTree::Punct(pc)) if pc.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        p.skip_type();
        if p.is_punct(',') {
            p.next();
        }
        let has_default = attrs.iter().any(|(n, _)| n == "default");
        fields.push(Field { name, has_default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut p = Parser::new(stream);
    let mut count = 0;
    while !p.at_end() {
        p.take_attrs();
        if p.at_end() {
            break;
        }
        p.skip_visibility();
        p.skip_type();
        count += 1;
        if p.is_punct(',') {
            p.next();
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut p = Parser::new(stream);
    let mut variants = Vec::new();
    while !p.at_end() {
        p.take_attrs();
        if p.at_end() {
            break;
        }
        let name = p.expect_ident();
        let shape = match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                p.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                p.next();
                VariantShape::Tuple(count)
            }
            _ => VariantShape::Unit,
        };
        if p.is_punct(',') {
            p.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut p = Parser::new(input);
    let container_attrs = p.take_attrs();
    p.skip_visibility();
    let kind = p.expect_ident();
    let name = p.expect_ident();
    if p.is_punct('<') {
        panic!("serde derive: generic types are not supported by the vendored serde");
    }
    let shape = match kind.as_str() {
        "struct" => match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemShape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => ItemShape::UnitStruct,
        },
        "enum" => match p.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemShape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: malformed enum body {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    };
    let lookup = |key: &str| {
        container_attrs
            .iter()
            .find(|(n, _)| n == key)
            .and_then(|(_, v)| v.clone())
    };
    Item {
        name,
        shape,
        from_ty: lookup("from"),
        into_ty: lookup("into"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.into_ty {
        format!(
            "let proxy: {into_ty} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::serialize(&proxy)"
        )
    } else {
        match &item.shape {
            ItemShape::NamedStruct(fields) => {
                let mut s = String::from(
                    "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    s.push_str(&format!(
                        "entries.push((::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::serialize(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(entries)");
                s
            }
            ItemShape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
            ItemShape::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            ItemShape::UnitStruct => "::serde::Value::Null".to_string(),
            ItemShape::Enum(variants) => {
                let mut s = String::from("match self {\n");
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => s.push_str(&format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                        )),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::serialize(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::serialize({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            s.push_str(&format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                                binds = binds.join(", ")
                            ));
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let mut payload = String::from(
                                "{ let mut inner: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Value)> = ::std::vec::Vec::new();\n",
                            );
                            for f in fields {
                                payload.push_str(&format!(
                                    "inner.push((::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::serialize({0})));\n",
                                    f.name
                                ));
                            }
                            payload.push_str("::serde::Value::Object(inner) }");
                            s.push_str(&format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                                binds = binds.join(", ")
                            ));
                        }
                    }
                }
                s.push('}');
                s
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Decoder expression for one named field out of `entries`.
fn named_field_decoder(f: &Field, ty_name: &str) -> String {
    let missing = if f.has_default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{}\", \"{}\"))",
            f.name, ty_name
        )
    };
    format!(
        "{0}: match ::serde::get_field(entries, \"{0}\") {{\n\
         ::std::option::Option::Some(v) => ::serde::Deserialize::deserialize(v)?,\n\
         ::std::option::Option::None => {missing},\n}},\n",
        f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.from_ty {
        format!(
            "let proxy = <{from_ty} as ::serde::Deserialize>::deserialize(value)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(proxy))"
        )
    } else {
        match &item.shape {
            ItemShape::NamedStruct(fields) => {
                let mut s = format!(
                    "let entries = value.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n"
                );
                for f in fields {
                    s.push_str(&named_field_decoder(f, name));
                }
                s.push_str("})");
                s
            }
            ItemShape::TupleStruct(1) => {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))"
                )
            }
            ItemShape::TupleStruct(n) => {
                let mut s = format!(
                    "let items = value.as_array().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                     ::std::result::Result::Ok({name}(\n"
                );
                for i in 0..*n {
                    s.push_str(&format!(
                        "::serde::Deserialize::deserialize(items.get({i}).ok_or_else(|| \
                         ::serde::DeError::custom(\"tuple too short for {name}\"))?)?,\n"
                    ));
                }
                s.push_str("))");
                s
            }
            ItemShape::UnitStruct => format!("::std::result::Result::Ok({name})"),
            ItemShape::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            unit_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                            ));
                        }
                        VariantShape::Tuple(1) => {
                            tagged_arms.push_str(&format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::deserialize(payload)?)),\n"
                            ));
                        }
                        VariantShape::Tuple(n) => {
                            let mut arm = format!(
                                "\"{vname}\" => {{ let items = payload.as_array().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected array for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname}(\n"
                            );
                            for i in 0..*n {
                                arm.push_str(&format!(
                                    "::serde::Deserialize::deserialize(items.get({i}).ok_or_else(|| \
                                     ::serde::DeError::custom(\"tuple too short\"))?)?,\n"
                                ));
                            }
                            arm.push_str(")) },\n");
                            tagged_arms.push_str(&arm);
                        }
                        VariantShape::Struct(fields) => {
                            let mut arm = format!(
                                "\"{vname}\" => {{ let entries = payload.as_object().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected object for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n"
                            );
                            for f in fields {
                                arm.push_str(&named_field_decoder(f, name));
                            }
                            arm.push_str("}) },\n");
                            tagged_arms.push_str(&arm);
                        }
                    }
                }
                format!(
                    "match value {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant `{{other}}` for {name}\"))),\n}},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                     let (tag, payload) = &entries[0];\n\
                     match tag.as_str() {{\n{tagged_arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown variant `{{other}}` for {name}\"))),\n}}\n}},\n\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected enum value for {name}, got {{other:?}}\"))),\n}}"
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{\n{body}\n}}\n}}\n"
    )
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde derive: generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
