//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored [`serde::Value`] tree to compact JSON text
//! (`{"key":value}` with no whitespace, matching real serde_json's
//! `to_string`) and parses JSON text back into the tree.

use serde::{Deserialize, Serialize, Value};

/// Error produced by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out)?;
    Ok(out)
}

/// Deserializes a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                // Real serde_json refuses non-finite floats; `null` keeps the
                // document well-formed and round-trips to NaN.
                out.push_str("null");
            } else if f.fract() == 0.0 && f.abs() < 1e15 {
                // Keep the ".0" so floats stay floats across a round trip.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`] tree.
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes: Vec<char> = text.chars().collect();
    let mut p = JsonParser {
        chars: bytes,
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(value)
}

struct JsonParser {
    chars: Vec<char>,
    pos: usize,
}

impl JsonParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), Error> {
        match self.bump() {
            Some(found) if found == c => Ok(()),
            other => Err(Error::new(format!(
                "expected `{c}` at offset {}, found {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.parse_object(),
            Some('[') => self.parse_array(),
            Some('"') => Ok(Value::Str(self.parse_string()?)),
            Some('t') => self.parse_keyword("true", Value::Bool(true)),
            Some('f') => self.parse_keyword("false", Value::Bool(false)),
            Some('n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                other => {
                    return Err(Error::new(format!(
                        "invalid literal at offset {}: expected `{word}`, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
        Ok(value)
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Object(entries)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object at offset {}, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array at offset {}, found {other:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(s),
                Some('\\') => match self.bump() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{0008}'),
                    Some('f') => s.push('\u{000C}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| Error::new("invalid \\u escape"))?;
                            code = code * 16 + digit;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    other => return Err(Error::new(format!("invalid escape {other:?}"))),
                },
                Some(c) => s.push(c),
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' | 'e' | 'E' | '+' | '-' => {
                    is_float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_output() {
        let entries = vec![
            ("version".to_string(), Value::UInt(1)),
            ("name".to_string(), Value::Str("auburn_c".into())),
        ];
        let mut out = String::new();
        write_value(&Value::Object(entries), &mut out).unwrap();
        assert_eq!(out, "{\"version\":1,\"name\":\"auburn_c\"}");
    }

    #[test]
    fn floats_keep_fraction_marker() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&0.0f64).unwrap(), "0.0");
    }

    #[test]
    fn roundtrip() {
        let json = "{\"a\":[1,-2,3.5,null,true],\"b\":\"x\\ny\"}";
        let value = parse(json).unwrap();
        let mut out = String::new();
        write_value(&value, &mut out).unwrap();
        assert_eq!(out, json);
    }

    #[test]
    fn malformed_is_error() {
        assert!(parse("{not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u32> = from_str("[1,2,3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        let s: String = from_str("\"hi\"").unwrap();
        assert_eq!(s, "hi");
    }
}
