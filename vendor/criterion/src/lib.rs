//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box` and the `criterion_group!`/`criterion_main!`
//! macros. Instead of criterion's statistical machinery it runs each
//! benchmark for a small fixed number of timed iterations and prints the
//! mean wall-clock time (and throughput when configured). Good enough to
//! keep `cargo bench` working and produce comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Work-per-iteration annotation used to derive throughput numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iterations` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let sample_size = self.sample_size;
        let mut group = self.benchmark_group("");
        group.sample_size(sample_size as usize);
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Sets the work-per-iteration annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let iters = bencher.iterations.max(1);
        let mean = bencher.elapsed.as_secs_f64() / iters as f64;
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => println!(
                "bench {label}: {:.3} ms/iter ({:.0} elem/s)",
                mean * 1e3,
                n as f64 / mean
            ),
            Some(Throughput::Bytes(n)) if mean > 0.0 => println!(
                "bench {label}: {:.3} ms/iter ({:.0} B/s)",
                mean * 1e3,
                n as f64 / mean
            ),
            _ => println!("bench {label}: {:.3} ms/iter", mean * 1e3),
        }
    }
}

/// Declares a benchmark group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_expected_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(7);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 7);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::new("f", "x"), &21, |b, &input| {
            b.iter(|| seen = input * 2)
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(5), 5);
    }
}
