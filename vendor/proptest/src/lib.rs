//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface the workspace's property tests use: the
//! [`Strategy`] trait over ranges / `Just` / tuples / `prop::collection::vec`
//! / `prop_oneof!`, the `proptest!` macro (deterministically seeded random
//! cases, no shrinking), `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig`]. Failing cases report the case number; since case
//! generation is deterministic per test name, every failure is reproducible.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Error type carried by `prop_assert!` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type returned by generated test-case closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic test-case generation machinery.
pub mod test_runner {
    /// A deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator whose stream depends only on `name`.
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: seed }
        }

        /// The next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform draw from `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below: bound must be positive");
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty u64 range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Uniform choice among several strategies of the same type (built by
/// `prop_oneof!`).
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S> OneOf<S> {
    /// Creates a choice over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

/// `prop::` namespace mirror.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        use std::ops::Range;

        /// Collection sizes: an exact count or a half-open range.
        pub trait IntoSizeRange {
            /// Draws the collection length for one case.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end, "empty size range");
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }

        /// Strategy producing `Vec`s of values drawn from `element`.
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.len.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// A strategy for `Vec`s with the given element strategy and size.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Everything property tests typically import.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Uniform choice among strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($strategy),+])
    };
}

/// Asserts a condition inside a proptest case, failing the case (not the
/// process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Declares property tests: each `fn` runs `config.cases` deterministic
/// random cases of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        // No implicit `#[test]`: proptest's convention is that each fn in
        // the block carries its own `#[test]` attribute (matched by $meta).
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case}/{} failed: {e}", config.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let u = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&u));
            let f = (0.5f32..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_name("vecs");
        let exact = prop::collection::vec(0.0f32..1.0, 4).sample(&mut rng);
        assert_eq!(exact.len(), 4);
        for _ in 0..100 {
            let ranged = prop::collection::vec(0usize..5, 1..7).sample(&mut rng);
            assert!((1..7).contains(&ranged.len()));
        }
    }

    #[test]
    fn oneof_picks_only_given_options() {
        let mut rng = TestRng::from_name("oneof");
        let strategy = prop_oneof![Just(1usize), Just(4), Just(10)];
        for _ in 0..100 {
            assert!([1, 4, 10].contains(&strategy.sample(&mut rng)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn generated_tests_run((a, b) in (0usize..10, 0usize..10), extra in 5u64..6) {
            prop_assert!(a < 10);
            prop_assert!(b < 10, "b was {b}");
            prop_assert_eq!(extra, 5);
            if a == 0 {
                return Ok(());
            }
            prop_assert!(a >= 1);
        }
    }
}
