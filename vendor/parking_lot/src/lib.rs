//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is swallowed, as
//! parking_lot has no poisoning).

/// A mutual-exclusion lock whose `lock` never returns a poisoned error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned mutex"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return poisoned errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_shared_state() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 1);
    }
}
