//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::unbounded`: a multi-producer,
//! multi-consumer FIFO channel (std's `mpsc` receiver cannot be cloned, so
//! this is built directly on `Mutex` + `Condvar`). Only the surface the
//! workspace uses is implemented: `unbounded`, cloneable `Sender` /
//! `Receiver`, blocking `recv`, non-blocking `try_recv` and `send`.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty and
        /// senders remain.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues the next value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let received: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
        assert_eq!(received, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn multiple_consumers_drain_everything() {
        let (tx, rx) = channel::unbounded();
        let consumers: Vec<channel::Receiver<u32>> = (0..4).map(|_| rx.clone()).collect();
        drop(rx);
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = std::thread::scope(|scope| {
            let handles: Vec<_> = consumers
                .into_iter()
                .map(|rx| {
                    scope.spawn(move || {
                        let mut sum = 0u32;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..1000).sum::<u32>());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = channel::unbounded();
        std::thread::scope(|scope| {
            let h = scope.spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(99u8).unwrap();
            assert_eq!(h.join().unwrap(), 99);
        });
    }
}
