//! Integration tests for the multi-node fleet: scatter-gather answers must
//! be byte-identical to a single-node service over the union of streams —
//! across placements, node losses mid-ingest and mid-query, and rebalances
//! — while scattering opens strictly fewer segments than broadcasting
//! under selective time filters. The `fleet_faults_*` tests are the
//! deterministic kill/recover/rebalance matrix the `fleet-faults` CI job
//! runs per node count; `fleet_failover_soak` is the nightly soak.

use proptest::prelude::*;

use focus::cnn::GroundTruthCnn;
use focus::core::fleet::{FleetConfig, FleetCoordinator, FleetError};
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::{IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig};
use focus::index::QueryFilter;
use focus::runtime::{Clock, GpuClusterSpec, NetCostModel, VirtualClock};
use focus::video::profile::profile_by_name;
use focus::video::{Frame, VideoDataset};

use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_fleet_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Specialization and adaptation are per-process schedules that a failover
/// resets, so the equivalence tests run with both disabled — the regime in
/// which fleet answers are provably byte-identical to a single node's.
fn service_config(seal_secs: f64) -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(seal_secs),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn fleet_config(nodes: usize, seal_secs: f64) -> FleetConfig {
    FleetConfig {
        nodes,
        service: service_config(seal_secs),
        net: NetCostModel::default(),
    }
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne", "cnn"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

/// Round-robin interleaving in `chunk`-frame runs — multi-camera arrival
/// order.
fn interleave(datasets: &[VideoDataset], chunk: usize) -> Vec<Frame> {
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames = Vec::new();
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(ds.frames.len());
            if *cursor < end {
                frames.extend(ds.frames[*cursor..end].iter().cloned());
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            return frames;
        }
    }
}

/// The standard request mix: unfiltered, two time windows, a stream
/// restriction (exercises shard skipping), and a second class.
fn request_mix(datasets: &[VideoDataset], secs: f64) -> Vec<QueryRequest> {
    let classes = datasets[0].dominant_classes(2);
    let second = classes.get(1).copied().unwrap_or(classes[0]);
    vec![
        QueryRequest::new(classes[0]),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::any().with_time_range(0.0, secs / 3.0)),
        QueryRequest::new(classes[0]).with_filter(
            QueryFilter::any()
                .with_time_range(secs / 2.0, secs)
                .with_kx(3),
        ),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::for_stream(datasets[0].profile.stream_id)),
        QueryRequest::new(second),
    ]
}

fn fleet_with(
    name: &str,
    nodes: usize,
    seal_secs: f64,
    datasets: &[VideoDataset],
) -> (FleetCoordinator, PathBuf) {
    let dir = test_dir(name);
    let mut fleet = FleetCoordinator::create(
        &dir,
        fleet_config(nodes, seal_secs),
        GroundTruthCnn::resnet152(),
    )
    .unwrap();
    for ds in datasets {
        fleet
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    (fleet, dir)
}

/// The single-node twin: one `FocusService` over the union of streams.
fn twin_with(name: &str, seal_secs: f64, datasets: &[VideoDataset]) -> (FocusService, PathBuf) {
    let dir = test_dir(name);
    let mut twin =
        FocusService::create(&dir, service_config(seal_secs), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        twin.register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    (twin, dir)
}

fn canonical(outcomes: &[focus::core::QueryOutcome]) -> String {
    // The vendored serde implements `Serialize` for `Vec`, not `[T]`.
    serde_json::to_string(&outcomes.to_vec()).unwrap()
}

/// The tentpole acceptance: for 1, 2 and 4 nodes, a fleet-served wave is
/// byte-identical (canonical JSON, accounting included) to the single-node
/// twin's, broadcast returns the same answers, and under the mix's time
/// filters scattering opens strictly fewer segments than broadcasting.
#[test]
fn fleet_serves_byte_identical_to_single_node_twin() {
    let secs = 40.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);

    let (mut twin, twin_dir) = twin_with("twin", 6.0, &datasets);
    twin.advance(&frames).unwrap();
    let expected = canonical(&twin.serve(&requests).unwrap());

    for nodes in [1usize, 2, 4] {
        let (mut fleet, dir) = fleet_with(&format!("ident_{nodes}"), nodes, 6.0, &datasets);
        fleet.advance(&frames).unwrap();
        let outcomes = fleet.serve(&requests).unwrap();
        assert_eq!(canonical(&outcomes), expected, "{nodes} nodes");

        let stats = fleet.stats();
        assert_eq!(stats.shards, datasets.len());
        assert!(
            stats.last_scatter_width <= datasets.len(),
            "scatter contacted {} shards",
            stats.last_scatter_width
        );
        let scatter_opened = stats.segments_opened;

        // Broadcast: identical answers (the verdict cache is warm now, so
        // compare content, not accounting), strictly more segment opens.
        let broadcast = fleet.serve_broadcast(&requests).unwrap();
        for (a, b) in outcomes.iter().zip(broadcast.iter()) {
            assert_eq!(a.frames, b.frames);
            assert_eq!(a.objects, b.objects);
            assert_eq!(a.matched_clusters, b.matched_clusters);
            assert_eq!(a.confirmed_clusters, b.confirmed_clusters);
        }
        let broadcast_opened = fleet.stats().segments_opened - scatter_opened;
        assert!(
            scatter_opened < broadcast_opened,
            "{nodes} nodes: scatter opened {scatter_opened}, broadcast {broadcast_opened}"
        );
        assert!(fleet.stats().net.bytes_total() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&twin_dir).ok();
}

/// Satellite: a query scattered before a rebalance gathers correctly after
/// it — every shard contributed exactly once (the gather merge panics on a
/// duplicate cluster key) and the answers equal the twin's.
#[test]
fn query_during_rebalance_sees_exactly_once_results() {
    let secs = 30.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);

    let (mut fleet, dir) = fleet_with("rebalance_query", 2, 8.0, &datasets);
    fleet.advance(&frames).unwrap();

    // Scatter, then move a shard while the batch is in flight.
    let batch = fleet.scatter(&requests, true).unwrap();
    let moved = fleet.manifest().assignments[0].clone();
    let target = (moved.node + 1) % 2;
    fleet.rebalance(moved.shard, target).unwrap();
    assert_eq!(
        fleet.manifest().assignment(moved.shard).unwrap().node,
        target
    );
    assert_eq!(fleet.manifest().epoch, datasets.len() as u64 + 1);

    let mut contacted = batch.contacted.clone();
    contacted.dedup();
    assert_eq!(contacted, batch.contacted, "a shard was contacted twice");
    let outcomes = fleet.gather(&requests, batch).unwrap();

    // The rebalance sealed the shard's tail but moved no data: answers
    // still equal the never-rebalanced twin's.
    let (mut twin, twin_dir) = twin_with("rebalance_twin", 8.0, &datasets);
    twin.advance(&frames).unwrap();
    let expected = twin.serve(&requests).unwrap();
    assert_eq!(canonical(&outcomes), canonical(&expected));

    // And the moved shard serves from its new node: a fresh wave still
    // matches (cache-warm on both sides for byte equality).
    let again = fleet.serve(&requests).unwrap();
    let expected_again = twin.serve(&requests).unwrap();
    assert_eq!(canonical(&again), canonical(&expected_again));
    assert_eq!(fleet.stats().rebalances, 1);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&twin_dir).ok();
}

/// Satellite: a manifest in which two nodes claim the same segment range
/// (here: the same stream, hence the same shard ranges) is rejected when
/// the coordinator loads it — split-brain placements refuse to start.
#[test]
fn conflicting_segment_range_claims_rejected_at_recover() {
    use focus::core::fleet::{ClusterManifest, ShardAssignment};
    let dir = test_dir("split_brain");
    std::fs::create_dir_all(dir.join("node-0")).unwrap();
    let mut manifest = ClusterManifest::new();
    manifest.assignments.push(ShardAssignment {
        shard: 0,
        node: 0,
        dir: "shard-0000".into(),
        streams: vec![7],
    });
    manifest.assignments.push(ShardAssignment {
        shard: 1,
        node: 1,
        dir: "shard-0001".into(),
        streams: vec![7],
    });
    manifest.epoch = 1;
    let manifest = manifest.seal();
    let json = serde_json::to_string(&manifest).unwrap();
    std::fs::write(dir.join("CLUSTER.json"), &json).unwrap();
    std::fs::write(dir.join("node-0").join("CLUSTER.json"), &json).unwrap();

    let err = FleetCoordinator::recover(&dir, fleet_config(1, 10.0), GroundTruthCnn::resnet152())
        .unwrap_err();
    assert!(
        err.to_string().contains("claimed by two shards"),
        "unexpected error: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The deterministic fault scenario the `fleet-faults` CI matrix runs per
/// node count: ingest, lose a loaded node mid-ingest, fail over (replaying
/// the buffered tail), keep ingesting, lose another mid-query (between
/// scatter and gather), fail over again, rebalance, and compare the final
/// wave byte-for-byte against a never-crashed single-node twin. All under
/// a virtual clock, so the simulated failover time is asserted exactly.
fn fault_scenario(nodes: usize) {
    let secs = 36.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);
    let cut = frames.len() / 2;

    let clock = VirtualClock::new();
    let (fleet, dir) = fleet_with(&format!("faults_{nodes}"), nodes, 7.0, &datasets);
    let mut fleet = fleet.with_clock(clock.clone());

    // Mid-ingest loss: the victim's hot tails die with it.
    fleet.advance(&frames[..cut]).unwrap();
    let victim = fleet.manifest().assignments[0].node;
    fleet.kill_node(victim);
    if nodes == 1 {
        // No survivor: failover must refuse, not corrupt.
        assert!(matches!(fleet.failover(), Err(FleetError::NoSurvivor)));
        assert!(matches!(
            fleet.serve(&requests),
            Err(FleetError::NodeDown { .. })
        ));
        fleet.restart_node(victim);
    }
    let before = clock.now_secs();
    let report = fleet.failover().unwrap();
    assert_eq!(
        clock.now_secs(),
        before + report.secs,
        "clock charges failover"
    );
    if nodes > 1 {
        assert!(report.shards_recovered >= 1);
        assert!(report.frames_replayed > 0, "the lost tail was replayed");
        assert!(report.secs > 0.0);
        assert!(fleet
            .manifest()
            .assignments
            .iter()
            .all(|a| a.node != victim));
    } else {
        // The restarted node re-adopts its own durable shards.
        assert_eq!(report.shards_recovered, datasets.len());
    }

    // Ingest continues seamlessly on the survivors.
    fleet.advance(&frames[cut..]).unwrap();

    // Mid-query loss: the scattered batch owns its data, so gather
    // completes even though a contacted node just died.
    if nodes > 1 {
        // The first victim rejoins (empty) so a survivor always exists.
        fleet.restart_node(victim);
        let batch = fleet.scatter(&requests, true).unwrap();
        let victim2 = fleet.manifest().assignments[0].node;
        fleet.kill_node(victim2);
        let outcomes = fleet.gather(&requests, batch).unwrap();
        assert!(!outcomes.is_empty());
        fleet.failover().unwrap();
        fleet.restart_node(victim2);
        // Rebalance a shard back onto the restarted second victim.
        let shard = fleet.manifest().assignments[0].shard;
        fleet.rebalance(shard, victim2).unwrap();
        assert_eq!(fleet.manifest().assignment(shard).unwrap().node, victim2);
    } else {
        let batch = fleet.scatter(&requests, true).unwrap();
        fleet.gather(&requests, batch).unwrap();
    }

    // Final wave vs the never-crashed twin: warm both verdict caches with
    // one wave, then compare byte-identically, accounting included.
    let (mut twin, twin_dir) = twin_with(&format!("faults_twin_{nodes}"), 7.0, &datasets);
    twin.advance(&frames).unwrap();
    twin.serve(&requests).unwrap();
    fleet.serve(&requests).unwrap();
    assert_eq!(
        canonical(&fleet.serve(&requests).unwrap()),
        canonical(&twin.serve(&requests).unwrap()),
        "{nodes}-node fleet diverged from the twin after faults"
    );
    let stats = fleet.stats();
    assert_eq!(stats.failovers, if nodes > 1 { 2 } else { 1 });
    assert!(stats.last_failover_secs > 0.0);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&twin_dir).ok();
}

#[test]
fn fleet_faults_1_node() {
    fault_scenario(1);
}

#[test]
fn fleet_faults_2_nodes() {
    fault_scenario(2);
}

#[test]
fn fleet_faults_4_nodes() {
    fault_scenario(4);
}

/// Nightly soak: repeated kill → failover → rebalance → ingest rounds on a
/// longer recording, checking twin equivalence after every round.
#[test]
// nightly: multi-round failover soak takes minutes; nightly.yml's
// failover-soak job runs it with --ignored.
#[ignore = "nightly failover soak (minutes): run with --ignored"]
fn fleet_failover_soak() {
    let secs = 90.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);
    let rounds = 6usize;
    let chunk = frames.len() / rounds;

    let clock = VirtualClock::new();
    let (fleet, dir) = fleet_with("soak", 3, 9.0, &datasets);
    let mut fleet = fleet.with_clock(clock.clone());
    let (mut twin, twin_dir) = twin_with("soak_twin", 9.0, &datasets);

    for round in 0..rounds {
        let slice = &frames[round * chunk..((round + 1) * chunk).min(frames.len())];
        fleet.advance(slice).unwrap();
        twin.advance(slice).unwrap();
        // Node loss mid-ingest: the failover replays the victim's tails.
        let victim = fleet.manifest().assignments[round % datasets.len()].node;
        fleet.kill_node(victim);
        let report = fleet.failover().unwrap();
        assert!(report.secs > 0.0);
        fleet.restart_node(victim);
        // A rebalance force-seals the moved shard — a segmentation event
        // the twin must mirror, so both sides seal at the round boundary
        // (the shard's tail is then already durable and the rebalance
        // moves ownership only).
        fleet.seal_all().unwrap();
        twin.seal_all().unwrap();
        let shard = fleet.manifest().assignments[round % datasets.len()].shard;
        fleet.rebalance(shard, victim).unwrap();
        assert_eq!(
            canonical(&fleet.serve(&requests).unwrap()),
            canonical(&twin.serve(&requests).unwrap()),
            "round {round}"
        );
    }
    let stats = fleet.stats();
    assert_eq!(stats.failovers, rounds);
    assert_eq!(stats.rebalances, rounds);
    assert!(stats.net.scatter_width() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&twin_dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 5,
        .. ProptestConfig::default()
    })]

    /// The pinned acceptance proptest: over arbitrary node counts, seal
    /// cadences, ingest split points and node-loss schedules, the fleet's
    /// answers are byte-identical to the single-node twin's, and the
    /// scattered path never opens more segments than broadcast (strictly
    /// fewer whenever broadcast had prunable segments to open).
    #[test]
    fn fleet_matches_twin_over_arbitrary_placements_and_losses(
        (nodes, seal_secs, cut_fraction, kill_slot, case) in (
            1usize..5,
            5.0f64..12.0,
            0.3f64..0.9,
            // 0..3 kills the node owning that shard slot; 3 = no kill.
            0usize..4,
            0u64..1_000_000,
        )
    ) {
        let secs = 30.0;
        let datasets = workload(secs);
        let frames = interleave(&datasets, 64);
        let requests = request_mix(&datasets, secs);
        let cut = (frames.len() as f64 * cut_fraction) as usize;

        let (mut fleet, dir) =
            fleet_with(&format!("prop_{case}"), nodes, seal_secs, &datasets);
        fleet.advance(&frames[..cut]).unwrap();
        if kill_slot < datasets.len() && nodes > 1 {
            let victim = fleet.manifest().assignments[kill_slot].node;
            fleet.kill_node(victim);
            fleet.failover().unwrap();
        }
        fleet.advance(&frames[cut..]).unwrap();
        let outcomes = fleet.serve(&requests).unwrap();
        let scatter_opened = fleet.stats().segments_opened;

        let (mut twin, twin_dir) =
            twin_with(&format!("prop_twin_{case}"), seal_secs, &datasets);
        twin.advance(&frames).unwrap();
        let expected = twin.serve(&requests).unwrap();
        prop_assert_eq!(canonical(&outcomes), canonical(&expected));

        // Broadcast is never cheaper, and strictly costlier whenever it
        // actually opened something (the mix's filters always prune).
        fleet.serve_broadcast(&requests).unwrap();
        let broadcast_opened = fleet.stats().segments_opened - scatter_opened;
        if broadcast_opened > 0 {
            prop_assert!(
                scatter_opened < broadcast_opened,
                "scatter {} vs broadcast {}", scatter_opened, broadcast_opened
            );
        }
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&twin_dir).ok();
    }
}
