//! Recall/precision harness for track-level spatio-temporal queries
//! ([`focus::core::query::track`]), pinned against a brute-force track
//! scan over the raw observations:
//!
//! - **Recall is 1.0 by construction.** A sketch-planned query's objects
//!   must be a superset of the plain class query's objects restricted to
//!   tracks whose *exact* trace ([`VideoDataset::track_traces`], the same
//!   position/timestamp definition the sketcher folds) satisfies the
//!   filter. Sketch evaluation is conservative, so nothing the exact scan
//!   admits may be dropped. Precision (< 1.0 — sketches over-approximate)
//!   is reported per query mix.
//! - **Intersection before verification is free.** Planning the same
//!   request with track pruning disabled (`prune_tracks: false` — the
//!   class-only baseline that verifies every class-matched candidate)
//!   yields a byte-identical payload (canonical `serde_json` of frames
//!   and objects) while verifying strictly more candidates and spending
//!   strictly more GT inferences.
//! - **Seal boundaries are invisible to the filter.** A proptest over
//!   arbitrary seal cadences pins that the sketch absorb-merge makes the
//!   planner's track scope byte-identical no matter where segment seals
//!   fall, and that on every service the filtered payload is exactly the
//!   plain payload restricted to scope-admitted tracks.

use proptest::prelude::*;

use focus::cnn::GroundTruthCnn;
use focus::core::query::{Region, TrackFilter, TrackPredicate};
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::{
    IngestParams, QueryOutcome, QueryRequest, QueryServer, SealPolicy, StreamWorkerConfig,
};
use focus::runtime::{GpuClusterSpec, GpuMeter};
use focus::video::profile::profile_by_name;
use focus::video::{Frame, ObjectId, StreamId, TrackId, VideoDataset};

use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_track_queries_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Specialization disabled (stable ground-truth epoch) so sketch-planned
/// vs baseline comparisons are exact.
fn config(seal_secs: f64) -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(seal_secs),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn interleave(datasets: &[VideoDataset], chunk: usize) -> Vec<Frame> {
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames = Vec::new();
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(ds.frames.len());
            if *cursor < end {
                frames.extend(ds.frames[*cursor..end].iter().cloned());
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            return frames;
        }
    }
}

fn ingested_service(
    name: &str,
    seal_secs: f64,
    datasets: &[VideoDataset],
    frames: &[Frame],
) -> FocusService {
    let dir = test_dir(name);
    let mut service =
        FocusService::create(&dir, config(seal_secs), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    service.advance(frames).unwrap();
    service
}

/// The stable payload of an outcome: result frames and objects. The
/// accounting fields legitimately differ between execution modes.
fn payload_json(outcome: &QueryOutcome) -> String {
    serde_json::to_string(&(&outcome.frames, &outcome.objects)).unwrap()
}

/// The query mix the harness (and the `track_queries` bench) exercises:
/// region visits/entries, a cross-frame transit, a dwell, and speed bands.
/// The frame is 1280x720; tracks move at up to ~4.5 px/frame.
fn query_mix() -> Vec<(&'static str, TrackFilter)> {
    let left = Region::new(0.0, 0.0, 640.0, 720.0);
    let right = Region::new(640.0, 0.0, 1280.0, 720.0);
    let band = Region::new(500.0, 120.0, 780.0, 600.0);
    vec![
        (
            "visit_left",
            TrackFilter::new().and(TrackPredicate::visits(left)),
        ),
        (
            "enter_band",
            TrackFilter::new().and(TrackPredicate::enters(band)),
        ),
        (
            "exit_right",
            TrackFilter::new().and(TrackPredicate::exits(right)),
        ),
        (
            "transit_left_to_right",
            TrackFilter::new().and(TrackPredicate::transit(left, right)),
        ),
        (
            "dwell_band_3s",
            TrackFilter::new().and(TrackPredicate::dwells(band, 3.0)),
        ),
        (
            "fast_tracks",
            TrackFilter::new().and(TrackPredicate::speed_above(60.0)),
        ),
        (
            "slow_in_left",
            TrackFilter::new()
                .and(TrackPredicate::speed_below(45.0))
                .and(TrackPredicate::visits(left)),
        ),
    ]
}

/// Every observation's track, for mapping result objects back to traces.
fn track_of(datasets: &[VideoDataset]) -> HashMap<ObjectId, (StreamId, TrackId)> {
    let mut map = HashMap::new();
    for ds in datasets {
        for obj in ds.objects() {
            map.insert(obj.object_id, (obj.stream_id, obj.track_id));
        }
    }
    map
}

/// Brute-force reference: the tracks whose exact raw-observation trace
/// satisfies `filter`.
fn exactly_admitted(
    datasets: &[VideoDataset],
    filter: &TrackFilter,
) -> BTreeSet<(StreamId, TrackId)> {
    let mut admitted = BTreeSet::new();
    for ds in datasets {
        for (key, trace) in ds.track_traces() {
            if filter.admits_trace(&trace) {
                admitted.insert(key);
            }
        }
    }
    admitted
}

/// The acceptance pin: for every query in the mix, recall of the
/// sketch-planned answer against the brute-force trace scan is exactly
/// 1.0 (conservative sketches may only over-admit, never drop), and
/// precision is reported. At least one query must actually discriminate
/// (admit strictly fewer objects than the plain class query) or the
/// harness has no teeth.
#[test]
fn sketch_planned_recall_is_one_against_brute_force_trace_scan() {
    let datasets = workload(40.0);
    let frames = interleave(&datasets, 64);
    let service = ingested_service("recall", 8.0, &datasets, &frames);
    let class = datasets[0].dominant_classes(1)[0];
    let tracks = track_of(&datasets);

    let plain = service
        .serve(&[QueryRequest::new(class)])
        .unwrap()
        .pop()
        .unwrap();
    let plain_objects: BTreeSet<ObjectId> = plain.objects.iter().copied().collect();
    assert!(!plain_objects.is_empty(), "workload must produce results");

    let mut discriminated = false;
    for (name, filter) in query_mix() {
        let got = service
            .serve(&[QueryRequest::new(class).with_tracks(filter.clone())])
            .unwrap()
            .pop()
            .unwrap();
        let got_objects: BTreeSet<ObjectId> = got.objects.iter().copied().collect();

        // Reference: the plain query's objects restricted to tracks the
        // exact trace scan admits.
        let admitted = exactly_admitted(&datasets, &filter);
        let reference: BTreeSet<ObjectId> = plain_objects
            .iter()
            .filter(|id| admitted.contains(&tracks[id]))
            .copied()
            .collect();

        let hit = reference.intersection(&got_objects).count();
        let recall = if reference.is_empty() {
            1.0
        } else {
            hit as f64 / reference.len() as f64
        };
        let precision = if got_objects.is_empty() {
            1.0
        } else {
            hit as f64 / got_objects.len() as f64
        };
        println!(
            "track query {name}: recall {recall:.3} precision {precision:.3} \
             ({} reference objects, {} returned)",
            reference.len(),
            got_objects.len()
        );
        assert_eq!(
            recall, 1.0,
            "query {name}: conservative sketches must never drop an \
             exactly-satisfying track"
        );
        assert!(
            precision > 0.0 || reference.is_empty(),
            "query {name}: a non-empty reference implies a non-empty answer"
        );
        // The sketch answer can only over-admit relative to the exact
        // scan, and never beyond the plain class query.
        assert!(got_objects.is_subset(&plain_objects), "query {name}");
        if got_objects.len() < plain_objects.len() {
            discriminated = true;
        }
    }
    assert!(
        discriminated,
        "at least one query in the mix must reject some tracks"
    );
}

/// The tentpole cost pin: disabling intersection-before-verification
/// (`prune_tracks: false` — class-only planning) yields a byte-identical
/// payload while planning strictly more candidates and spending strictly
/// more GT inferences.
#[test]
fn pruned_planning_is_byte_identical_and_strictly_cheaper() {
    let datasets = workload(40.0);
    let frames = interleave(&datasets, 64);
    let mut service = ingested_service("pruned", 8.0, &datasets, &frames);
    service.seal_all().unwrap();
    let corpus = service.corpus();
    let class = datasets[0].dominant_classes(1)[0];

    let band = Region::new(500.0, 120.0, 780.0, 600.0);
    let request = QueryRequest::new(class)
        .with_tracks(TrackFilter::new().and(TrackPredicate::dwells(band, 3.0)));
    let classes = corpus.lookup_classes(request.class, &request.filter);

    let pruned = corpus
        .plan_with_tail_scoped(&request, None, &classes, true, true)
        .unwrap();
    let unpruned = corpus
        .plan_with_tail_scoped(&request, None, &classes, true, false)
        .unwrap();
    assert_eq!(
        pruned.plan.track_scope, unpruned.plan.track_scope,
        "both paths carry the same sketch scope"
    );
    assert!(
        !pruned.plan.track_scope.is_empty(),
        "the dwell filter must reject some tracks or the pin is vacuous"
    );
    assert!(
        unpruned.plan.candidates.len() > pruned.plan.candidates.len(),
        "pruning must drop candidates ({} vs {})",
        unpruned.plan.candidates.len(),
        pruned.plan.candidates.len()
    );

    // Serve each plan through its own server (fresh verdict caches) so
    // the inference counts are honest per-path totals.
    let serve = |planned: &focus::core::query::SegmentedPlan| {
        let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        server
            .serve_resolved(
                std::slice::from_ref(&planned.plan),
                std::slice::from_ref(&planned.records),
                |id| corpus.centroids.get(&id).cloned(),
                &GpuMeter::new(),
            )
            .pop()
            .unwrap()
    };
    let pruned_outcome = serve(&pruned);
    let unpruned_outcome = serve(&unpruned);

    assert_eq!(
        payload_json(&pruned_outcome),
        payload_json(&unpruned_outcome),
        "member-level scope filtering makes the payloads byte-identical"
    );
    assert!(
        unpruned_outcome.matched_clusters > pruned_outcome.matched_clusters,
        "class-only planning verifies strictly more candidates"
    );
    assert!(
        unpruned_outcome.centroid_inferences > pruned_outcome.centroid_inferences,
        "class-only planning spends strictly more GT inferences ({} vs {})",
        unpruned_outcome.centroid_inferences,
        pruned_outcome.centroid_inferences
    );

    // The production serve path agrees with the explicitly-pruned plan.
    let end_to_end = service.serve(&[request]).unwrap().pop().unwrap();
    assert_eq!(payload_json(&end_to_end), payload_json(&pruned_outcome));
}

/// The planner's sketch scope for `request` on a live service
/// (segments plus unsealed tail).
fn scope_of(service: &FocusService, request: &QueryRequest) -> focus::core::query::TrackScope {
    let corpus = service.corpus();
    let tail = service.tail_snapshot();
    let classes = corpus.lookup_classes(request.class, &request.filter);
    corpus
        .plan_with_tail_scoped(request, Some(&tail), &classes, true, true)
        .unwrap()
        .plan
        .track_scope
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Arbitrary seal boundaries never change a TrackFilter's results.
    /// Cluster *records* are legitimately seal-dependent (a seal boundary
    /// can split a cluster, changing centroids and so GT verdicts — true
    /// of plain class queries too), so the pin factors the filter out:
    /// for two services over the same frames with independently drawn
    /// seal cadences (one may leave an unsealed tail),
    ///
    /// 1. the planner's sketch scope is byte-identical — the absorb-merge
    ///    is associative, so the whole-life sketches are independent of
    ///    where seals fall; and
    /// 2. on each service, the filtered payload is *exactly* the plain
    ///    payload restricted to scope-admitted tracks — the TrackFilter
    ///    contributes a pure per-track restriction and nothing else.
    #[test]
    fn seal_boundaries_never_change_track_filter_results(
        (seal_a, seal_b, case) in (3.0f64..9.0, 9.0f64..20.0, 0u64..1_000_000)
    ) {
        let datasets = workload(24.0);
        let frames = interleave(&datasets, 64);
        let service_a =
            ingested_service(&format!("seal_a_{case}"), seal_a, &datasets, &frames);
        let service_b =
            ingested_service(&format!("seal_b_{case}"), seal_b, &datasets, &frames);
        let class = datasets[0].dominant_classes(1)[0];
        let tracks = track_of(&datasets);
        let frame_of: HashMap<ObjectId, focus::video::FrameId> = datasets
            .iter()
            .flat_map(|ds| ds.objects().map(|o| (o.object_id, o.frame_id)))
            .collect();

        for (name, filter) in query_mix() {
            let request = QueryRequest::new(class).with_tracks(filter);
            let scope = scope_of(&service_a, &request);
            prop_assert!(
                scope == scope_of(&service_b, &request),
                "query {}: sketch scope differs across seal cadences {} vs {}",
                name,
                seal_a,
                seal_b
            );
            for service in [&service_a, &service_b] {
                let plain = service
                    .serve(&[QueryRequest::new(class)])
                    .unwrap()
                    .pop()
                    .unwrap();
                let filtered = service
                    .serve(std::slice::from_ref(&request))
                    .unwrap()
                    .pop()
                    .unwrap();
                let expect_objects: Vec<ObjectId> = plain
                    .objects
                    .iter()
                    .copied()
                    .filter(|id| {
                        let (stream, track) = tracks[id];
                        scope.admits(focus::index::TrackKey::new(stream, track))
                    })
                    .collect();
                prop_assert!(
                    filtered.objects == expect_objects,
                    "query {}: filtered objects are not the scope-restricted plain objects",
                    name
                );
                let expect_frames: BTreeSet<focus::video::FrameId> =
                    expect_objects.iter().map(|id| frame_of[id]).collect();
                let got_frames: BTreeSet<focus::video::FrameId> =
                    filtered.frames.iter().copied().collect();
                prop_assert!(
                    got_frames == expect_frames,
                    "query {}: filtered frames are not the admitted members' frames",
                    name
                );
            }
        }
    }
}
