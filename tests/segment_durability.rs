//! Integration tests for the durable, time-partitioned segment store: a
//! segmented corpus must answer queries byte-identically to the merged
//! in-memory index while opening strictly fewer segments under time
//! filters, and must recover every sealed segment after crashes and
//! corruption.

use proptest::prelude::*;

use focus::cnn::{GroundTruthCnn, ModelSpec};
use focus::core::segment_ingest::{SealPolicy, SegmentedIngest, SegmentedIngestOutput};
use focus::core::{IngestCnn, IngestParams, QueryRequest, QueryServer, SegmentedCorpus};
use focus::index::{persist, QueryFilter, SegmentStore};
use focus::runtime::{GpuClusterSpec, GpuMeter, IoMeter};
use focus::video::profile::profile_by_name;
use focus::video::VideoDataset;

use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_segment_durability_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn segmented(policy: SealPolicy, shards: usize) -> SegmentedIngest {
    SegmentedIngest::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
        policy,
        shards,
    )
}

fn build(
    name: &str,
    secs: f64,
    policy: SealPolicy,
    shards: usize,
) -> (Vec<VideoDataset>, SegmentedIngestOutput, PathBuf) {
    let datasets = workload(secs);
    let dir = test_dir(name);
    let mut store = SegmentStore::create(&dir).unwrap();
    let output = segmented(policy, shards)
        .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
        .unwrap();
    (datasets, output, dir)
}

fn server() -> QueryServer {
    QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4))
}

/// Satellite: round-trip save/open across 1/2/4 shards asserting
/// canonical-JSON equality between the store (reopened from disk) and the
/// in-memory combined index.
#[test]
fn store_roundtrip_matches_in_memory_index_across_shard_counts() {
    let datasets = workload(45.0);
    let mut canonical: Option<String> = None;
    for shards in [1usize, 2, 4] {
        let dir = test_dir(&format!("roundtrip_{shards}"));
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = segmented(SealPolicy::every_secs(15.0), shards)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();
        drop(store);

        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "shards={shards}: {report:?}");
        let from_disk = persist::to_json(&reopened.merged_index().unwrap()).unwrap();
        let in_memory = persist::to_json(&output.combined.index).unwrap();
        assert_eq!(from_disk, in_memory, "shards={shards}");
        // Every shard count produces the same canonical bytes.
        match &canonical {
            None => canonical = Some(from_disk),
            Some(expected) => assert_eq!(&from_disk, expected, "shards={shards}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Acceptance criterion: time-filtered queries over a segmented store
/// return byte-identical results to the merged in-memory index while
/// opening strictly fewer segments.
#[test]
fn time_filtered_queries_are_identical_and_open_fewer_segments() {
    let (datasets, output, dir) = build("pruned_query", 60.0, SealPolicy::every_secs(15.0), 2);
    let (store, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let corpus = SegmentedCorpus::from_output(store, &output);

    let classes = datasets[0].dominant_classes(3);
    let requests: Vec<QueryRequest> = classes
        .iter()
        .flat_map(|c| {
            [
                QueryRequest::new(*c).with_filter(QueryFilter::any().with_time_range(0.0, 10.0)),
                QueryRequest::new(*c).with_filter(QueryFilter::any().with_time_range(30.0, 44.0)),
            ]
        })
        .collect();

    // The segmented server and the in-memory server run the same model on
    // the same candidates: outcomes must serialize byte-identically.
    let io = IoMeter::new();
    let served = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &io)
        .unwrap();
    let reference = server().serve(&output.combined, &requests, &GpuMeter::new());
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
    for outcome in &served {
        assert!(!outcome.frames.is_empty() || outcome.confirmed_clusters == 0);
    }

    // Strictly fewer segments opened than the store holds, per query and in
    // total: every request above spans at most half the timeline.
    let total_segments = corpus.store().len();
    assert!(total_segments >= 8, "expected a well-segmented store");
    for request in &requests {
        let planned = corpus.plan(request).unwrap();
        assert!(
            planned.access.segments_considered < total_segments,
            "request {request:?} opened {} of {total_segments}",
            planned.access.segments_considered
        );
    }
    // The IoMeter saw the storage work.
    let stats = io.snapshot();
    assert!(stats.segments_opened() > 0);
    assert!(stats.segment_loads > 0);
    assert!(stats.bytes_read > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a bit-flipped segment is detected by its manifest checksum
/// and quarantined on open instead of being silently loaded.
#[test]
fn corrupted_segment_is_quarantined_not_loaded() {
    let (_, output, dir) = build("corrupt", 45.0, SealPolicy::every_secs(15.0), 2);
    let victim = output.sealed[2].file.clone();
    let path = dir.join(&victim);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let (store, report) = SegmentStore::open(&dir).unwrap();
    assert_eq!(report.quarantined, vec![victim.clone()]);
    assert!(dir.join(format!("{victim}.quarantined")).exists());
    assert_eq!(store.len(), output.sealed.len() - 1);
    // The survivors are exactly the other segments' records.
    let mut expected = focus::index::TopKIndex::new();
    for meta in output.sealed.iter().filter(|m| m.file != victim) {
        let loaded = store.load(meta.id).unwrap();
        assert_eq!(expected.merge_from(&loaded), 0);
    }
    assert_eq!(
        persist::to_json(&store.merged_index().unwrap()).unwrap(),
        persist::to_json(&expected).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance criterion: a kill between the two-step write (segment file,
/// then manifest) loses nothing that was acknowledged — every manifested
/// segment is recovered, the half-written temp file is swept, and the
/// unacknowledged orphan is quarantined rather than trusted.
#[test]
fn kill_between_writes_recovers_every_sealed_segment() {
    let (_, output, dir) = build("crash", 45.0, SealPolicy::every_secs(15.0), 1);
    let sealed_json = {
        let (store, _) = SegmentStore::open(&dir).unwrap();
        persist::to_json(&store.merged_index().unwrap()).unwrap()
    };

    // Crash A: killed mid-segment-write — a partial temp file remains.
    std::fs::write(dir.join("seg-000099.json.tmp"), b"{\"version\":1,\"ind").unwrap();
    // Crash B: killed after the segment rename but before the manifest
    // update — a complete, valid-looking segment the manifest never saw.
    let orphan_payload = persist::to_json(&focus::index::TopKIndex::new()).unwrap();
    std::fs::write(dir.join("seg-000098.json"), orphan_payload).unwrap();

    let (recovered, report) = SegmentStore::open(&dir).unwrap();
    assert_eq!(report.removed_temp, vec!["seg-000099.json.tmp".to_string()]);
    assert_eq!(report.quarantined, vec!["seg-000098.json".to_string()]);
    assert!(report.missing.is_empty());
    // Every sealed segment is back, byte-identically.
    assert_eq!(recovered.len(), output.sealed.len());
    assert_eq!(
        persist::to_json(&recovered.merged_index().unwrap()).unwrap(),
        sealed_json
    );
    // And the repaired store opens clean the next time.
    drop(recovered);
    let (_, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction folds small adjacent segments without changing query results.
#[test]
fn compaction_preserves_query_results() {
    let (datasets, output, dir) = build("compact", 60.0, SealPolicy::every_secs(10.0), 2);
    let (store, _) = SegmentStore::open(&dir).unwrap();
    let mut corpus = SegmentedCorpus::from_output(store, &output);
    let before_segments = corpus.store().len();

    let class = datasets[0].dominant_classes(1)[0];
    let requests = vec![
        QueryRequest::new(class),
        QueryRequest::new(class).with_filter(QueryFilter::any().with_time_range(0.0, 25.0)),
    ];
    let before = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();

    let folded = corpus.store_mut().compact(200).unwrap();
    assert!(folded > 0, "expected the 10-second segments to fold");
    assert!(corpus.store().len() < before_segments);

    // A fresh (cold) server: the accounting fields must match too, not just
    // the result sets.
    let after = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();
    assert_eq!(
        serde_json::to_string(&before).unwrap(),
        serde_json::to_string(&after).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a frame landing exactly on a
/// [`SealPolicy::every_secs`] boundary must land in exactly one segment —
/// no duplicate, no drop — for 1, 2 and 4 shards. The boundary frame
/// starts the *next* segment: its timestamp equals the new segment's
/// `t_start`.
#[test]
fn seal_boundary_frame_lands_in_exactly_one_segment() {
    // 30 s at a 10-s budget: boundary frames sit exactly at t = 10 and
    // t = 20 (frame ids fps*10 and fps*20, both exactly representable).
    let secs = 30.0;
    let budget = 10.0;
    let datasets = workload(secs);
    for shards in [1usize, 2, 4] {
        let dir = test_dir(&format!("boundary_{shards}"));
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = segmented(SealPolicy::every_secs(budget), shards)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();

        // Every object of the workload is a member of exactly one sealed
        // record: totals match and no member object id repeats.
        let mut member_objects = Vec::new();
        for meta in store.segments() {
            let segment = store.load(meta.id).unwrap();
            for record in segment.clusters() {
                member_objects.extend(record.members.iter().map(|m| m.object));
            }
        }
        let total = member_objects.len();
        assert_eq!(
            total,
            datasets.iter().map(|d| d.object_count()).sum::<usize>(),
            "shards={shards}: every frame's objects sealed exactly once"
        );
        member_objects.sort();
        member_objects.dedup();
        assert_eq!(
            total,
            member_objects.len(),
            "shards={shards}: no duplicates"
        );

        // The boundary frame belongs to the segment that *starts* at the
        // boundary, for every stream that has motion in that frame.
        for ds in &datasets {
            let fps = ds.profile.fps;
            for boundary in [budget, 2.0 * budget] {
                let boundary_frame = focus::video::FrameId((boundary * fps as f64) as u64);
                let with_objects = ds
                    .frames
                    .iter()
                    .find(|f| f.frame_id == boundary_frame)
                    .map(|f| !f.objects.is_empty())
                    .unwrap_or(false);
                if !with_objects {
                    continue;
                }
                let mut holders = Vec::new();
                for meta in store.segments() {
                    let segment = store.load(meta.id).unwrap();
                    let members: usize = segment
                        .clusters()
                        .filter(|r| r.key.stream == ds.profile.stream_id)
                        .flat_map(|r| r.members.iter())
                        .filter(|m| m.frame == boundary_frame)
                        .count();
                    if members > 0 {
                        holders.push((meta.t_start, members));
                    }
                }
                assert_eq!(
                    holders.len(),
                    1,
                    "shards={shards}: boundary frame {boundary_frame:?} in one segment"
                );
                // It opens the next window: the holding segment starts at
                // the boundary.
                assert!(
                    (holders[0].0 - boundary).abs() < 1e-9,
                    "shards={shards}: boundary frame starts the next segment \
                     (t_start = {}, boundary = {boundary})",
                    holders[0].0
                );
            }
        }

        // Whole-store invariant unchanged by the boundary handling.
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            persist::to_json(&output.combined.index).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Satellite: arbitrary seal boundaries never change query results —
    /// for any (duration, seal budget, shard count), serving over the
    /// segmented store is byte-identical to serving over the merged
    /// in-memory index, filtered and unfiltered.
    #[test]
    fn arbitrary_seal_boundaries_never_change_query_results(
        (secs, budget_secs, shards, case) in (
            20.0f64..40.0,
            3.0f64..20.0,
            prop_oneof![Just(1usize), Just(2), Just(3)],
            0u64..1_000_000,
        )
    ) {
        let datasets = workload(secs);
        let dir = test_dir(&format!("proptest_{case}_{shards}"));
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = segmented(SealPolicy::every_secs(budget_secs), shards)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();
        let corpus = SegmentedCorpus::from_output(store, &output);

        let class = datasets[0].dominant_classes(1)[0];
        let half = secs / 2.0;
        let requests = vec![
            QueryRequest::new(class),
            QueryRequest::new(class)
                .with_filter(QueryFilter::any().with_time_range(0.0, half)),
            QueryRequest::new(class)
                .with_filter(QueryFilter::any().with_time_range(half, secs).with_kx(3)),
        ];
        let srv = server();
        let segmented_outcomes = srv
            .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
            .unwrap();
        let reference = server().serve(&output.combined, &requests, &GpuMeter::new());
        prop_assert_eq!(
            serde_json::to_string(&segmented_outcomes).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
