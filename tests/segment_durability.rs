//! Integration tests for the durable, time-partitioned segment store: a
//! segmented corpus must answer queries byte-identically to the merged
//! in-memory index while opening strictly fewer segments under time
//! filters, and must recover every sealed segment after crashes and
//! corruption.

use proptest::prelude::*;

use focus::cnn::{GroundTruthCnn, ModelSpec};
use focus::core::segment_ingest::{SealPolicy, SegmentedIngest, SegmentedIngestOutput};
use focus::core::{IngestCnn, IngestParams, QueryRequest, QueryServer, SegmentedCorpus};
use focus::index::{
    binseg, persist, ClusterKey, ClusterRecord, MemberRef, QueryFilter, SegmentError,
    SegmentFormat, SegmentStore, TopKIndex,
};
use focus::runtime::{GpuClusterSpec, GpuMeter, IoMeter};
use focus::video::profile::profile_by_name;
use focus::video::{ClassId, FrameId, ObjectId, StreamId, TrackId, VideoDataset};

use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_segment_durability_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn segmented(policy: SealPolicy, shards: usize) -> SegmentedIngest {
    SegmentedIngest::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
        policy,
        shards,
    )
}

fn build(
    name: &str,
    secs: f64,
    policy: SealPolicy,
    shards: usize,
) -> (Vec<VideoDataset>, SegmentedIngestOutput, PathBuf) {
    build_with_format(name, secs, policy, shards, SegmentFormat::Binary)
}

fn build_with_format(
    name: &str,
    secs: f64,
    policy: SealPolicy,
    shards: usize,
    format: SegmentFormat,
) -> (Vec<VideoDataset>, SegmentedIngestOutput, PathBuf) {
    let datasets = workload(secs);
    let dir = test_dir(name);
    let mut store = SegmentStore::create(&dir).unwrap().with_seal_format(format);
    let output = segmented(policy, shards)
        .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
        .unwrap();
    (datasets, output, dir)
}

fn server() -> QueryServer {
    QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4))
}

/// Satellite: round-trip save/open across 1/2/4 shards asserting
/// canonical-JSON equality between the store (reopened from disk) and the
/// in-memory combined index.
#[test]
fn store_roundtrip_matches_in_memory_index_across_shard_counts() {
    let datasets = workload(45.0);
    let mut canonical: Option<String> = None;
    for shards in [1usize, 2, 4] {
        let dir = test_dir(&format!("roundtrip_{shards}"));
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = segmented(SealPolicy::every_secs(15.0), shards)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();
        drop(store);

        let (reopened, report) = SegmentStore::open(&dir).unwrap();
        assert!(report.is_clean(), "shards={shards}: {report:?}");
        let from_disk = persist::to_json(&reopened.merged_index().unwrap()).unwrap();
        let in_memory = persist::to_json(&output.combined.index).unwrap();
        assert_eq!(from_disk, in_memory, "shards={shards}");
        // Every shard count produces the same canonical bytes.
        match &canonical {
            None => canonical = Some(from_disk),
            Some(expected) => assert_eq!(&from_disk, expected, "shards={shards}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Acceptance criterion: time-filtered queries over a segmented store
/// return byte-identical results to the merged in-memory index while
/// opening strictly fewer segments.
#[test]
fn time_filtered_queries_are_identical_and_open_fewer_segments() {
    let (datasets, output, dir) = build("pruned_query", 60.0, SealPolicy::every_secs(15.0), 2);
    let (store, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let corpus = SegmentedCorpus::from_output(store, &output);

    let classes = datasets[0].dominant_classes(3);
    let requests: Vec<QueryRequest> = classes
        .iter()
        .flat_map(|c| {
            [
                QueryRequest::new(*c).with_filter(QueryFilter::any().with_time_range(0.0, 10.0)),
                QueryRequest::new(*c).with_filter(QueryFilter::any().with_time_range(30.0, 44.0)),
            ]
        })
        .collect();

    // The segmented server and the in-memory server run the same model on
    // the same candidates: outcomes must serialize byte-identically.
    let io = IoMeter::new();
    let served = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &io)
        .unwrap();
    let reference = server().serve(&output.combined, &requests, &GpuMeter::new());
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&reference).unwrap()
    );
    for outcome in &served {
        assert!(!outcome.frames.is_empty() || outcome.confirmed_clusters == 0);
    }

    // Strictly fewer segments opened than the store holds, per query and in
    // total: every request above spans at most half the timeline.
    let total_segments = corpus.store().len();
    assert!(total_segments >= 8, "expected a well-segmented store");
    for request in &requests {
        let planned = corpus.plan(request).unwrap();
        assert!(
            planned.access.segments_considered < total_segments,
            "request {request:?} opened {} of {total_segments}",
            planned.access.segments_considered
        );
    }
    // The IoMeter saw the storage work.
    let stats = io.snapshot();
    assert!(stats.segments_opened() > 0);
    assert!(stats.segment_loads > 0);
    assert!(stats.bytes_read > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a bit-flipped segment is detected by its manifest checksum
/// and quarantined on open instead of being silently loaded.
#[test]
fn corrupted_segment_is_quarantined_not_loaded() {
    let (_, output, dir) = build("corrupt", 45.0, SealPolicy::every_secs(15.0), 2);
    let victim = output.sealed[2].file.clone();
    let path = dir.join(&victim);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();

    let (store, report) = SegmentStore::open(&dir).unwrap();
    assert_eq!(report.quarantined, vec![victim.clone()]);
    assert!(dir.join(format!("{victim}.quarantined")).exists());
    assert_eq!(store.len(), output.sealed.len() - 1);
    // The survivors are exactly the other segments' records.
    let mut expected = focus::index::TopKIndex::new();
    for meta in output.sealed.iter().filter(|m| m.file != victim) {
        let loaded = store.load(meta.id).unwrap();
        assert_eq!(expected.merge_from(&loaded), 0);
    }
    assert_eq!(
        persist::to_json(&store.merged_index().unwrap()).unwrap(),
        persist::to_json(&expected).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance criterion: a kill between the two-step write (segment file,
/// then manifest) loses nothing that was acknowledged — every manifested
/// segment is recovered, the half-written temp file is swept, and the
/// unacknowledged orphan is quarantined rather than trusted.
#[test]
fn kill_between_writes_recovers_every_sealed_segment() {
    let (_, output, dir) = build("crash", 45.0, SealPolicy::every_secs(15.0), 1);
    let sealed_json = {
        let (store, _) = SegmentStore::open(&dir).unwrap();
        persist::to_json(&store.merged_index().unwrap()).unwrap()
    };

    // Crash A: killed mid-segment-write — a partial temp file remains.
    std::fs::write(dir.join("seg-000099.json.tmp"), b"{\"version\":1,\"ind").unwrap();
    // Crash B: killed after the segment rename but before the manifest
    // update — a complete, valid-looking segment the manifest never saw.
    let orphan_payload = persist::to_json(&focus::index::TopKIndex::new()).unwrap();
    std::fs::write(dir.join("seg-000098.json"), orphan_payload).unwrap();

    let (recovered, report) = SegmentStore::open(&dir).unwrap();
    assert_eq!(report.removed_temp, vec!["seg-000099.json.tmp".to_string()]);
    assert_eq!(report.quarantined, vec!["seg-000098.json".to_string()]);
    assert!(report.missing.is_empty());
    // Every sealed segment is back, byte-identically.
    assert_eq!(recovered.len(), output.sealed.len());
    assert_eq!(
        persist::to_json(&recovered.merged_index().unwrap()).unwrap(),
        sealed_json
    );
    // And the repaired store opens clean the next time.
    drop(recovered);
    let (_, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance criterion: the binary segment format answers every query
/// byte-identically to the JSON (whole-file) format — through the pruned
/// query server as well as canonically via the merged index.
#[test]
fn binary_and_json_sealed_stores_answer_byte_identically() {
    let policy = || SealPolicy::every_secs(15.0);
    let (datasets, json_output, json_dir) =
        build_with_format("fmt_json", 45.0, policy(), 2, SegmentFormat::Json);
    let (_, bin_output, bin_dir) =
        build_with_format("fmt_bin", 45.0, policy(), 2, SegmentFormat::Binary);

    let (json_store, report) = SegmentStore::open(&json_dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let (bin_store, report) = SegmentStore::open(&bin_dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert!(json_store
        .segments()
        .iter()
        .all(|m| m.format == SegmentFormat::Json && m.file.ends_with(".json")));
    assert!(bin_store
        .segments()
        .iter()
        .all(|m| m.format == SegmentFormat::Binary && m.file.ends_with(".bin")));

    // The canonical merged bytes agree across formats.
    assert_eq!(
        persist::to_json(&json_store.merged_index().unwrap()).unwrap(),
        persist::to_json(&bin_store.merged_index().unwrap()).unwrap()
    );

    // So does everything the query server returns, filtered or not.
    let classes = datasets[0].dominant_classes(3);
    let requests: Vec<QueryRequest> = classes
        .iter()
        .flat_map(|c| {
            [
                QueryRequest::new(*c),
                QueryRequest::new(*c).with_filter(QueryFilter::any().with_time_range(0.0, 20.0)),
                QueryRequest::new(*c)
                    .with_filter(QueryFilter::any().with_time_range(10.0, 40.0).with_kx(3)),
            ]
        })
        .collect();
    let json_corpus = SegmentedCorpus::from_output(json_store, &json_output);
    let bin_corpus = SegmentedCorpus::from_output(bin_store, &bin_output);
    let from_json = server()
        .serve_segmented(&json_corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();
    let from_bin = server()
        .serve_segmented(&bin_corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();
    let reference = server().serve(&bin_output.combined, &requests, &GpuMeter::new());
    let canonical = serde_json::to_string(&reference).unwrap();
    assert_eq!(serde_json::to_string(&from_json).unwrap(), canonical);
    assert_eq!(serde_json::to_string(&from_bin).unwrap(), canonical);
    std::fs::remove_dir_all(&json_dir).ok();
    std::fs::remove_dir_all(&bin_dir).ok();
}

/// Satellite: format migration rewrites a JSON store to binary one segment
/// at a time; the mixed-format store keeps serving byte-identical results
/// mid-migration, reopens cleanly, and ends fully binary with the legacy
/// files gone.
#[test]
fn migration_serves_identically_mid_and_post() {
    let (datasets, output, dir) = build_with_format(
        "migrate",
        45.0,
        SealPolicy::every_secs(15.0),
        2,
        SegmentFormat::Json,
    );
    let classes = datasets[0].dominant_classes(2);
    let requests: Vec<QueryRequest> = classes
        .iter()
        .flat_map(|c| {
            [
                QueryRequest::new(*c),
                QueryRequest::new(*c).with_filter(QueryFilter::any().with_time_range(5.0, 30.0)),
            ]
        })
        .collect();
    let reference =
        serde_json::to_string(&server().serve(&output.combined, &requests, &GpuMeter::new()))
            .unwrap();

    let (mut store, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let total = store.len();
    assert!(store
        .segments()
        .iter()
        .all(|m| m.format == SegmentFormat::Json));

    // One segment at a time: after the first step the store is mixed.
    assert_eq!(store.migrate_format(1).unwrap(), 1);
    let formats: Vec<SegmentFormat> = store.segments().iter().map(|m| m.format).collect();
    assert!(formats.contains(&SegmentFormat::Binary));
    assert!(formats.contains(&SegmentFormat::Json));
    let mixed_corpus = SegmentedCorpus::from_output(store, &output);
    let mid = server()
        .serve_segmented(&mixed_corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();
    assert_eq!(serde_json::to_string(&mid).unwrap(), reference);
    drop(mixed_corpus);

    // The mixed store reopens cleanly (the manifest never dangles), and an
    // unbounded budget finishes the rewrite.
    let (mut store, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(store.migrate_format(usize::MAX).unwrap(), total - 1);
    assert!(store
        .segments()
        .iter()
        .all(|m| m.format == SegmentFormat::Binary && m.file.ends_with(".bin")));
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        assert!(
            !(name.starts_with("seg-") && name.ends_with(".json")),
            "legacy segment file left behind: {name}"
        );
    }
    let corpus = SegmentedCorpus::from_output(store, &output);
    let post = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();
    assert_eq!(serde_json::to_string(&post).unwrap(), reference);
    assert_eq!(
        persist::to_json(&corpus.store().merged_index().unwrap()).unwrap(),
        persist::to_json(&output.combined.index).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a bit flipped inside a binary record block after
/// the store was opened fails that block's checksum at lookup time (the
/// whole-file manifest checksum never re-runs on the block path), and the
/// next open quarantines the segment through the usual report machinery.
#[test]
fn bit_flipped_binary_block_fails_block_checksum_at_lookup() {
    let (_, output, dir) = build("block_corrupt", 45.0, SealPolicy::every_secs(15.0), 2);
    let victim = output.sealed[1].clone();
    assert_eq!(victim.format, SegmentFormat::Binary);

    // The class held by the victim's first record block, discovered via a
    // scratch handle so the store under test caches nothing.
    let first_class = {
        let (scratch, _) = SegmentStore::open(&dir).unwrap();
        let segment = scratch.load(victim.id).unwrap();
        segment
            .clusters()
            .min_by_key(|r| r.key)
            .expect("sealed segments are never empty")
            .top_k_classes[0]
    };

    let (store, report) = SegmentStore::open(&dir).unwrap();
    assert!(report.is_clean(), "{report:?}");
    // Flip one bit inside the first record block (just past the magic).
    let path = dir.join(&victim.file);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[6] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let err = store.lookup(first_class, &QueryFilter::any()).unwrap_err();
    assert!(matches!(err, SegmentError::Corrupt { .. }), "{err:?}");

    // Same detection, same quarantine machinery on the next open.
    drop(store);
    let (reopened, report) = SegmentStore::open(&dir).unwrap();
    assert_eq!(report.quarantined, vec![victim.file.clone()]);
    assert_eq!(reopened.len(), output.sealed.len() - 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Compaction folds small adjacent segments without changing query results.
#[test]
fn compaction_preserves_query_results() {
    let (datasets, output, dir) = build("compact", 60.0, SealPolicy::every_secs(10.0), 2);
    let (store, _) = SegmentStore::open(&dir).unwrap();
    let mut corpus = SegmentedCorpus::from_output(store, &output);
    let before_segments = corpus.store().len();

    let class = datasets[0].dominant_classes(1)[0];
    let requests = vec![
        QueryRequest::new(class),
        QueryRequest::new(class).with_filter(QueryFilter::any().with_time_range(0.0, 25.0)),
    ];
    let before = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();

    let folded = corpus.store_mut().compact(200).unwrap();
    assert!(folded > 0, "expected the 10-second segments to fold");
    assert!(corpus.store().len() < before_segments);

    // A fresh (cold) server: the accounting fields must match too, not just
    // the result sets.
    let after = server()
        .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
        .unwrap();
    assert_eq!(
        serde_json::to_string(&before).unwrap(),
        serde_json::to_string(&after).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a frame landing exactly on a
/// [`SealPolicy::every_secs`] boundary must land in exactly one segment —
/// no duplicate, no drop — for 1, 2 and 4 shards. The boundary frame
/// starts the *next* segment: its timestamp equals the new segment's
/// `t_start`.
#[test]
fn seal_boundary_frame_lands_in_exactly_one_segment() {
    // 30 s at a 10-s budget: boundary frames sit exactly at t = 10 and
    // t = 20 (frame ids fps*10 and fps*20, both exactly representable).
    let secs = 30.0;
    let budget = 10.0;
    let datasets = workload(secs);
    for shards in [1usize, 2, 4] {
        let dir = test_dir(&format!("boundary_{shards}"));
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = segmented(SealPolicy::every_secs(budget), shards)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();

        // Every object of the workload is a member of exactly one sealed
        // record: totals match and no member object id repeats.
        let mut member_objects = Vec::new();
        for meta in store.segments() {
            let segment = store.load(meta.id).unwrap();
            for record in segment.clusters() {
                member_objects.extend(record.members.iter().map(|m| m.object));
            }
        }
        let total = member_objects.len();
        assert_eq!(
            total,
            datasets.iter().map(|d| d.object_count()).sum::<usize>(),
            "shards={shards}: every frame's objects sealed exactly once"
        );
        member_objects.sort();
        member_objects.dedup();
        assert_eq!(
            total,
            member_objects.len(),
            "shards={shards}: no duplicates"
        );

        // The boundary frame belongs to the segment that *starts* at the
        // boundary, for every stream that has motion in that frame.
        for ds in &datasets {
            let fps = ds.profile.fps;
            for boundary in [budget, 2.0 * budget] {
                let boundary_frame = focus::video::FrameId((boundary * fps as f64) as u64);
                let with_objects = ds
                    .frames
                    .iter()
                    .find(|f| f.frame_id == boundary_frame)
                    .map(|f| !f.objects.is_empty())
                    .unwrap_or(false);
                if !with_objects {
                    continue;
                }
                let mut holders = Vec::new();
                for meta in store.segments() {
                    let segment = store.load(meta.id).unwrap();
                    let members: usize = segment
                        .clusters()
                        .filter(|r| r.key.stream == ds.profile.stream_id)
                        .flat_map(|r| r.members.iter())
                        .filter(|m| m.frame == boundary_frame)
                        .count();
                    if members > 0 {
                        holders.push((meta.t_start, members));
                    }
                }
                assert_eq!(
                    holders.len(),
                    1,
                    "shards={shards}: boundary frame {boundary_frame:?} in one segment"
                );
                // It opens the next window: the holding segment starts at
                // the boundary.
                assert!(
                    (holders[0].0 - boundary).abs() < 1e-9,
                    "shards={shards}: boundary frame starts the next segment \
                     (t_start = {}, boundary = {boundary})",
                    holders[0].0
                );
            }
        }

        // Whole-store invariant unchanged by the boundary handling.
        assert_eq!(
            persist::to_json(&store.merged_index().unwrap()).unwrap(),
            persist::to_json(&output.combined.index).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Satellite: arbitrary seal boundaries never change query results —
    /// for any (duration, seal budget, shard count), serving over the
    /// segmented store is byte-identical to serving over the merged
    /// in-memory index, filtered and unfiltered.
    #[test]
    fn arbitrary_seal_boundaries_never_change_query_results(
        (secs, budget_secs, shards, case) in (
            20.0f64..40.0,
            3.0f64..20.0,
            prop_oneof![Just(1usize), Just(2), Just(3)],
            0u64..1_000_000,
        )
    ) {
        let datasets = workload(secs);
        let dir = test_dir(&format!("proptest_{case}_{shards}"));
        let mut store = SegmentStore::create(&dir).unwrap();
        let output = segmented(SealPolicy::every_secs(budget_secs), shards)
            .ingest_to_store(&datasets, &mut store, &GpuMeter::new())
            .unwrap();
        let corpus = SegmentedCorpus::from_output(store, &output);

        let class = datasets[0].dominant_classes(1)[0];
        let half = secs / 2.0;
        let requests = vec![
            QueryRequest::new(class),
            QueryRequest::new(class)
                .with_filter(QueryFilter::any().with_time_range(0.0, half)),
            QueryRequest::new(class)
                .with_filter(QueryFilter::any().with_time_range(half, secs).with_kx(3)),
        ];
        let srv = server();
        let segmented_outcomes = srv
            .serve_segmented(&corpus, &requests, &GpuMeter::new(), &IoMeter::new())
            .unwrap();
        let reference = server().serve(&output.combined, &requests, &GpuMeter::new());
        prop_assert_eq!(
            serde_json::to_string(&segmented_outcomes).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Satellite: the binary segment codec round-trips *arbitrary* indexes
    /// to canonical-JSON byte identity — including empty indexes, records
    /// with empty top-K lists (no postings entry anywhere), single-class
    /// segments, and key gaps far beyond one delta block's span — and
    /// re-encoding the decoded index reproduces the exact bytes.
    #[test]
    fn binseg_roundtrip_is_byte_identical_for_arbitrary_indexes(
        parts in prop::collection::vec(
            (
                (
                    0u64..3,                                // stream
                    prop_oneof![                            // key gap: small,
                        1u64..1000,                         // beyond one block's
                        (1u64 << 32)..(1u64 << 32) + 2,     // span, and near the
                        (1u64 << 57)..(1u64 << 57) + 2,     // top of the space
                    ],
                    0u64..u64::MAX,                         // centroid object
                    0u64..u64::MAX,                         // centroid frame
                ),
                (
                    prop::collection::vec(0u64..50, 0..5),  // top-K classes
                    prop::collection::vec((0u64..u64::MAX, 0u64..u64::MAX), 0..4),
                    -1.0e9f64..1.0e9,                       // start_secs
                    0.0f64..1.0e6,                          // duration
                ),
            ),
            0..60,
        ),
        single_class in 0u64..2,
    ) {
        let single_class = single_class == 1;
        let mut index = TopKIndex::new();
        let mut local = 0u64;
        for ((stream, gap, object, frame), (classes, members, start, duration)) in parts {
            local += gap;
            // A ranked top-K list never repeats a class; duplicates would
            // double-post the key, which the postings codec rejects.
            let mut top_k_classes: Vec<ClassId> = if single_class {
                vec![ClassId(7)]
            } else {
                classes.into_iter().map(|c| ClassId(c as u16)).collect()
            };
            let mut seen = std::collections::HashSet::new();
            top_k_classes.retain(|c| seen.insert(*c));
            index.insert(ClusterRecord {
                key: ClusterKey::new(StreamId(stream as u32), local),
                centroid_object: ObjectId(object),
                centroid_frame: FrameId(frame),
                top_k_classes,
                members: members
                    .into_iter()
                    .map(|(o, f)| MemberRef {
                        object: ObjectId(o),
                        frame: FrameId(f),
                        track: TrackId(o % 7),
                    })
                    .collect(),
                start_secs: start,
                end_secs: start + duration,
            });
        }
        let bytes = binseg::encode(&index);
        let decoded = binseg::decode(&bytes).unwrap();
        prop_assert_eq!(
            persist::to_json(&index).unwrap(),
            persist::to_json(&decoded).unwrap()
        );
        // Deterministic codec: re-encoding reproduces the bytes exactly.
        prop_assert_eq!(bytes, binseg::encode(&decoded));
    }
}
