//! End-to-end guarantees of the concurrent query-serving subsystem:
//! byte-identical results to the serial engine, strictly fewer GT-CNN
//! inferences on overlapping workloads, and epoch-keyed cache invalidation.

use focus::cnn::{GroundTruthCnn, ModelSpec};
use focus::core::{IngestCnn, IngestEngine, IngestParams, QueryEngine, QueryRequest, QueryServer};
use focus::index::QueryFilter;
use focus::runtime::{GpuClusterSpec, GpuMeter};
use focus::video::profile::profile_by_name;
use focus::video::{ClassId, VideoDataset};

fn ingest(duration_secs: f64, k: usize) -> (VideoDataset, focus::core::IngestOutput) {
    let ds = VideoDataset::generate(profile_by_name("auburn_c").unwrap(), duration_secs);
    let out = IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k,
            ..IngestParams::default()
        },
    )
    .ingest(&ds, &GpuMeter::new());
    (ds, out)
}

/// An overlapping query workload: repeated classes, narrowing filters, and
/// time windows that share clusters with the unrestricted queries.
fn overlapping_workload(ds: &VideoDataset) -> Vec<QueryRequest> {
    let classes = ds.dominant_classes(3);
    let mut requests = Vec::new();
    for class in &classes {
        requests.push(QueryRequest::new(*class));
    }
    // Overlap: the same classes again, restricted — every candidate these
    // match was already verified for the unrestricted queries.
    requests.push(QueryRequest::new(classes[0]).with_filter(QueryFilter::any().with_kx(2)));
    requests.push(
        QueryRequest::new(classes[1]).with_filter(QueryFilter::any().with_time_range(0.0, 60.0)),
    );
    // And an exact repeat.
    requests.push(QueryRequest::new(classes[0]));
    requests
}

#[test]
fn concurrent_cached_run_is_byte_identical_to_serial_uncached_with_fewer_inferences() {
    let (ds, out) = ingest(120.0, 10);
    let workload = overlapping_workload(&ds);

    // (a) Serial, uncached: one engine, every query re-verifies everything.
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let serial_meter = GpuMeter::new();
    let serial: Vec<_> = workload
        .iter()
        .map(|req| engine.query(&out, req.class, &req.filter, &serial_meter))
        .collect();

    // (b) Concurrent, cached: one server call over the whole workload.
    let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let served_meter = GpuMeter::new();
    let served = server.serve(&out, &workload, &served_meter);

    assert_eq!(serial.len(), served.len());
    for (a, b) in serial.iter().zip(served.iter()) {
        // Byte-identical user-visible results.
        assert_eq!(
            serde_json::to_string(&a.frames).unwrap(),
            serde_json::to_string(&b.frames).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&a.objects).unwrap(),
            serde_json::to_string(&b.objects).unwrap()
        );
        assert_eq!(a.matched_clusters, b.matched_clusters);
        assert_eq!(a.confirmed_clusters, b.confirmed_clusters);
    }

    // Strictly fewer GT-CNN inferences: the serial run verified every
    // matched cluster of every query; the server deduplicated the overlap.
    let serial_inferences: usize = serial.iter().map(|o| o.centroid_inferences).sum();
    let served_inferences: usize = served.iter().map(|o| o.centroid_inferences).sum();
    assert!(serial_inferences > 0);
    assert!(
        served_inferences < serial_inferences,
        "server performed {served_inferences} inferences vs {serial_inferences} serial"
    );
    // The amortized batched cost is cheaper too.
    assert!(served_meter.phase("query").seconds() < serial_meter.phase("query").seconds());

    // The cache saw the overlap.
    let stats = server.cache_stats();
    assert_eq!(stats.misses, served_inferences);
    assert!(stats.hits > 0);
    assert!(stats.hit_rate() > 0.0);
}

#[test]
fn second_wave_is_served_entirely_from_cache() {
    let (ds, out) = ingest(90.0, 10);
    let workload = overlapping_workload(&ds);
    let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));

    let first = server.serve(&out, &workload, &GpuMeter::new());
    let misses_after_first = server.cache_stats().misses;
    assert!(misses_after_first > 0);

    let meter = GpuMeter::new();
    let second = server.serve(&out, &workload, &meter);
    // Identical outcomes, zero fresh inferences, zero GPU time.
    for (a, b) in first.iter().zip(second.iter()) {
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.objects, b.objects);
        assert_eq!(b.centroid_inferences, 0);
    }
    assert_eq!(server.cache_stats().misses, misses_after_first);
    assert_eq!(meter.total().seconds(), 0.0);
}

#[test]
fn retrain_epoch_bump_flips_centroid_verdicts_instead_of_serving_stale_ones() {
    let (ds, out) = ingest(60.0, 10);
    let class = ds.dominant_classes(1)[0];
    let request = vec![QueryRequest::new(class)];

    // Epoch 0: a flicker-free ground truth confirms the dominant class.
    let server = QueryServer::new(GroundTruthCnn::with_flicker(0.0), GpuClusterSpec::new(4));
    let before = server.serve(&out, &request, &GpuMeter::new());
    assert!(before[0].confirmed_clusters > 0);
    assert!(!before[0].frames.is_empty());

    // Epoch 1: a retrained model that flips every centroid's class (flicker
    // probability 1.0 scatters answers away from the true class). If stale
    // epoch-0 verdicts were served, the result would be unchanged.
    server.retrain_ground_truth(GroundTruthCnn::with_flicker(1.0));
    let after = server.serve(&out, &request, &GpuMeter::new());
    assert!(
        after[0].centroid_inferences > 0,
        "the retrained model must re-verify, not reuse cached verdicts"
    );
    assert_eq!(after[0].confirmed_clusters, 0);
    assert!(after[0].frames.is_empty());
    assert_ne!(before[0].frames, after[0].frames);

    // Epoch 2: re-ingest invalidation without a model change re-does the
    // work but reproduces the rejection.
    server.invalidate();
    assert_eq!(server.epoch(), 2);
    let again = server.serve(&out, &request, &GpuMeter::new());
    assert!(again[0].centroid_inferences > 0);
    assert_eq!(again[0].frames, after[0].frames);
}

#[test]
fn server_handles_absent_classes_and_empty_batches() {
    let (_, out) = ingest(30.0, 4);
    let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(2));
    assert!(server.serve(&out, &[], &GpuMeter::new()).is_empty());
    let outcome = server.serve_one(&out, &QueryRequest::new(ClassId(850)), &GpuMeter::new());
    assert_eq!(outcome.confirmed_clusters, 0);
    assert!(outcome.frames.is_empty());
}
