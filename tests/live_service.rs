//! Integration tests for the live [`FocusService`]: a query issued
//! mid-ingest must return results byte-identical to sealing every pending
//! record first and then querying, while opening no more segments than the
//! pruned segmented path and never re-verifying a centroid already cached
//! for the current ground-truth epoch.

use proptest::prelude::*;

use focus::cnn::{GpuCost, GroundTruthCnn, ModelSpec};
use focus::core::service::{FocusService, ServiceConfig, SERVICE_STATE_FILE};
use focus::core::{
    IngestCnn, IngestOutput, IngestParams, QueryEngine, QueryRequest, SealPolicy,
    StreamWorkerConfig,
};
use focus::index::{QueryFilter, SegmentFormat};
use focus::runtime::{GpuClusterSpec, GpuMeter};
use focus::video::profile::profile_by_name;
use focus::video::{Frame, VideoDataset};

use std::path::PathBuf;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_live_service_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A service config with specialization disabled (identity query routing),
/// so results can be compared against the serial engine over the merged
/// corpus.
fn config(seal_secs: f64) -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(seal_secs),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn service_with(name: &str, seal_secs: f64, datasets: &[VideoDataset]) -> (FocusService, PathBuf) {
    let dir = test_dir(name);
    let mut service =
        FocusService::create(&dir, config(seal_secs), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    (service, dir)
}

/// Round-robin interleaving of the datasets' frames in `chunk`-frame runs —
/// the arrival order a live multi-camera service sees.
fn interleave(datasets: &[VideoDataset], chunk: usize) -> Vec<Frame> {
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames = Vec::new();
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(ds.frames.len());
            if *cursor < end {
                frames.extend(ds.frames[*cursor..end].iter().cloned());
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            return frames;
        }
    }
}

fn request_mix(datasets: &[VideoDataset], secs: f64) -> Vec<QueryRequest> {
    let classes = datasets[0].dominant_classes(2);
    let second = classes.get(1).copied().unwrap_or(classes[0]);
    vec![
        QueryRequest::new(classes[0]),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::any().with_time_range(0.0, secs / 2.0)),
        QueryRequest::new(classes[0]).with_filter(
            QueryFilter::any()
                .with_time_range(secs / 2.0, secs)
                .with_kx(3),
        ),
        QueryRequest::new(second),
    ]
}

/// The acceptance criterion: serving mid-ingest is byte-identical to
/// sealing everything first and serving, and opens no more segments.
#[test]
fn mid_ingest_serve_equals_seal_all_then_serve() {
    let secs = 50.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);

    for cut_fraction in [0.35, 0.8] {
        let cut = (frames.len() as f64 * cut_fraction) as usize;
        let (mut live, live_dir) = service_with("mid_live", 15.0, &datasets);
        live.advance(&frames[..cut]).unwrap();
        let mid_ingest = live.serve(&requests).unwrap();

        // Twin: identical history, but every pending record sealed first.
        let (mut sealed, sealed_dir) = service_with("mid_sealed", 15.0, &datasets);
        sealed.advance(&frames[..cut]).unwrap();
        sealed.seal_all().unwrap();
        let all_sealed = sealed.serve(&requests).unwrap();

        assert_eq!(
            serde_json::to_string(&mid_ingest).unwrap(),
            serde_json::to_string(&all_sealed).unwrap(),
            "cut at {cut_fraction}"
        );
        // The tail overlay must not cost segment opens: the live service
        // opens no more segments than the all-sealed pruned path, which
        // has strictly more segments to consult.
        let live_stats = live.stats();
        let sealed_stats = sealed.stats();
        assert!(live_stats.segments < sealed_stats.segments);
        assert!(
            live_stats.io.segments_opened() <= sealed_stats.io.segments_opened(),
            "live opened {} vs sealed {}",
            live_stats.io.segments_opened(),
            sealed_stats.io.segments_opened()
        );
        // And part of the answer really came from memory.
        assert!(live_stats.tail_hit_fraction() > 0.0);
        assert_eq!(sealed_stats.tail_hit_fraction(), 0.0);
        std::fs::remove_dir_all(&live_dir).ok();
        std::fs::remove_dir_all(&sealed_dir).ok();
    }
}

/// The service's GT work is bounded by the uncached serial engine: batched,
/// deduplicated, cached verification can only do fewer inferences.
#[test]
fn gt_inferences_never_exceed_the_serial_engine() {
    let secs = 45.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 32);
    let requests = request_mix(&datasets, secs);
    let (mut service, dir) = service_with("inference_bound", 12.0, &datasets);
    service.advance(&frames[..frames.len() * 2 / 3]).unwrap();

    let outcomes = service.serve(&requests).unwrap();
    let service_inferences: usize = outcomes.iter().map(|o| o.centroid_inferences).sum();

    // Serial reference over the same corpus: merged segments + tail.
    let mut merged = service.store().merged_index().unwrap();
    let tail = service.tail_snapshot();
    assert_eq!(merged.merge_from(tail.index()), 0);
    let mut centroids = service.corpus().centroids.clone();
    for record in tail.index().clusters() {
        centroids.insert(
            record.centroid_object,
            tail.centroid(record.centroid_object).unwrap().clone(),
        );
    }
    let objects_total = merged.stats().objects;
    let clusters = merged.len();
    let reference = IngestOutput {
        index: merged,
        centroids,
        model: IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        params: config(12.0).worker.params,
        gpu_cost: GpuCost::ZERO,
        frames_total: 0,
        frames_with_motion: 0,
        objects_total,
        objects_classified: objects_total,
        clusters,
    };
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let mut serial_inferences = 0;
    for (request, outcome) in requests.iter().zip(outcomes.iter()) {
        let serial = engine.query(&reference, request.class, &request.filter, &GpuMeter::new());
        assert_eq!(outcome.frames, serial.frames);
        assert_eq!(outcome.objects, serial.objects);
        serial_inferences += serial.centroid_inferences;
    }
    assert!(
        service_inferences <= serial_inferences,
        "{service_inferences} > {serial_inferences}"
    );

    // A repeated wave re-verifies nothing cached for the current epoch.
    let again = service.serve(&requests).unwrap();
    assert_eq!(
        again.iter().map(|o| o.centroid_inferences).sum::<usize>(),
        0,
        "every verdict was cached"
    );
    for (a, b) in outcomes.iter().zip(again.iter()) {
        assert_eq!(a.frames, b.frames);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Specialization runs behind the service: retrains swap the stream's
/// routing model and bump the verdict-cache epoch automatically.
#[test]
fn retrain_bumps_verdict_cache_epoch() {
    let datasets = workload(120.0);
    let dir = test_dir("retrain_epoch");
    let mut service = FocusService::create(
        &dir,
        ServiceConfig {
            worker: StreamWorkerConfig {
                bootstrap_secs: 30.0,
                retrain_interval_secs: 45.0,
                ..StreamWorkerConfig::default()
            },
            seal: SealPolicy::every_secs(20.0),
            ..ServiceConfig::default()
        },
        GroundTruthCnn::resnet152(),
    )
    .unwrap();
    for ds in &datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    assert_eq!(service.query_server().epoch(), 0);
    let report = service.advance(&interleave(&datasets, 64)).unwrap();
    assert!(report.retrains >= 2, "retrains = {}", report.retrains);
    let stats = service.stats();
    assert_eq!(stats.retrains, report.retrains);
    // Each retrain invalidated the verdict cache.
    assert_eq!(service.query_server().epoch(), report.retrains as u64);
    // The streams now route through their own specialized models.
    for ds in &datasets {
        assert!(service
            .stream_model(ds.profile.stream_id)
            .unwrap()
            .descriptor
            .is_specialized());
        assert!(service
            .corpus()
            .stream_models
            .contains_key(&ds.profile.stream_id));
    }
    // Queries still serve cleanly over epochs from different models.
    let class = datasets[0].dominant_classes(1)[0];
    let outcomes = service.serve(&[QueryRequest::new(class)]).unwrap();
    assert!(!outcomes[0].frames.is_empty());
    // A GT retrain through the service bumps the epoch too.
    let epoch = service.query_server().epoch();
    service.retrain_ground_truth(GroundTruthCnn::with_flicker(0.0));
    assert_eq!(service.query_server().epoch(), epoch + 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Maintenance seals exactly what the next push would have sealed and
/// compacts without changing results.
#[test]
fn maintenance_seals_due_tails_and_compacts() {
    let secs = 60.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 128);
    let dir = test_dir("maintenance");
    let mut service = FocusService::create(
        &dir,
        ServiceConfig {
            // Tiny segments + an aggressive trigger so one run exercises
            // both halves of the maintenance tick.
            seal: SealPolicy::every_secs(5.0),
            small_segment_clusters: 1_000,
            compact_small_threshold: 6,
            compact_max_clusters: 10_000,
            ..config(5.0)
        },
        GroundTruthCnn::resnet152(),
    )
    .unwrap();
    for ds in &datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    service.advance(&frames).unwrap();
    let requests = request_mix(&datasets, secs);
    // Warm the verdict cache first, so the before/after waves are both
    // fully cached and byte-comparable including accounting.
    service.serve(&requests).unwrap();
    let before = service.serve(&requests).unwrap();

    // The final partial windows are pending; a full seal budget has been
    // reached for streams whose last frame landed on a boundary only. A
    // maintenance tick must at most seal what a next push would.
    let mut maintained = service.maintain().unwrap();
    if maintained.segments_folded == 0 {
        // Compaction may need a second tick once the seals landed.
        maintained = service.maintain().unwrap();
    }
    assert!(maintained.segments_folded > 0, "{maintained:?}");
    let after = service.serve(&requests).unwrap();
    assert_eq!(
        serde_json::to_string(&before).unwrap(),
        serde_json::to_string(&after).unwrap(),
        "maintenance must not change results"
    );
    let stats = service.stats();
    assert!(stats.compactions >= 1);
    assert!(stats.gpu.ticks >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A service pinned to JSON sealing migrates its segments to the binary
/// format one per maintenance tick, serving byte-identical answers the
/// whole way, and the fully migrated store recovers cleanly.
#[test]
fn maintenance_migrates_json_segments_without_changing_results() {
    let secs = 45.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let requests = request_mix(&datasets, secs);
    let cfg = ServiceConfig {
        seal_format: SegmentFormat::Json,
        migrate_per_maintain: 1,
        // Compaction would also rewrite segments; park it so every format
        // change below is attributable to migration.
        compact_small_threshold: usize::MAX,
        ..config(10.0)
    };
    let dir = test_dir("migrate_live");
    let mut service = FocusService::create(&dir, cfg.clone(), GroundTruthCnn::resnet152()).unwrap();
    for ds in &datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    service.advance(&frames).unwrap();
    service.seal_all().unwrap();
    assert!(service
        .store()
        .segments()
        .iter()
        .all(|m| m.format == SegmentFormat::Json));
    // Warm the verdict cache so every wave below is fully cached and
    // byte-comparable including its accounting.
    service.serve(&requests).unwrap();
    let baseline = serde_json::to_string(&service.serve(&requests).unwrap()).unwrap();

    // One JSON segment becomes binary per tick; answers never change.
    let mut migrated = 0usize;
    for _ in 0..200 {
        let report = service.maintain().unwrap();
        let wave = serde_json::to_string(&service.serve(&requests).unwrap()).unwrap();
        assert_eq!(baseline, wave, "migration changed results");
        if report.segments_migrated == 0 && migrated > 0 {
            break;
        }
        migrated += report.segments_migrated;
    }
    assert!(migrated > 0);
    assert!(service
        .store()
        .segments()
        .iter()
        .all(|m| m.format == SegmentFormat::Binary));
    // Both cache tiers are live and visible through the service stats.
    let stats = service.stats();
    assert!(stats.lru.capacity > 0);
    assert!(stats.lru.raw_capacity_bytes > 0);
    assert!(stats.lru.decoded_hits + stats.lru.raw_hits > 0);

    // The fully migrated store recovers cleanly and serves identically.
    drop(service);
    let (recovered, report) =
        FocusService::recover(&dir, cfg, GroundTruthCnn::resnet152()).unwrap();
    assert!(report.is_clean(), "{report:?}");
    // Warm the recovered verdict cache so the accounting matches too.
    recovered.serve(&requests).unwrap();
    assert_eq!(
        baseline,
        serde_json::to_string(&recovered.serve(&requests).unwrap()).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Restart-and-recover: the manifest plus the service sidecar restore the
/// sealed past; ingest resumes with non-colliding cluster keys.
#[test]
fn recover_resumes_ingest_and_serving() {
    let secs = 40.0;
    let datasets = workload(secs);
    let requests = request_mix(&datasets, secs);
    let dir = test_dir("recover");
    {
        let mut service =
            FocusService::create(&dir, config(8.0), GroundTruthCnn::resnet152()).unwrap();
        for ds in &datasets {
            service
                .register_stream(ds.profile.stream_id, ds.profile.fps)
                .unwrap();
        }
        for ds in &datasets {
            service.advance(&ds.frames[..ds.frames.len() / 2]).unwrap();
        }
        // Crash: the service is dropped; whatever was sealed survives,
        // the in-memory tail does not.
        assert!(!service.store().is_empty());
    }
    let (mut recovered, report) =
        FocusService::recover(&dir, config(8.0), GroundTruthCnn::resnet152()).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let segments_after_recovery = recovered.store().len();
    assert!(segments_after_recovery > 0);

    // Sealed clusters answer immediately (their centroids came from the
    // sidecar)...
    let outcomes = recovered.serve(&requests).unwrap();
    assert!(!outcomes[0].frames.is_empty());
    // ...and ingest continues where the stream left off without key
    // collisions (the key-disjointness assertion in planning would panic).
    for ds in &datasets {
        recovered
            .advance(&ds.frames[ds.frames.len() / 2..])
            .unwrap();
    }
    recovered.seal_all().unwrap();
    assert!(recovered.store().len() > segments_after_recovery);
    let after = recovered.serve(&requests).unwrap();
    let more_frames: usize = after.iter().map(|o| o.frames.len()).sum();
    let fewer_frames: usize = outcomes.iter().map(|o| o.frames.len()).sum();
    assert!(more_frames > fewer_frames, "resumed ingest added results");

    // A missing sidecar is a structured error, not a panic.
    std::fs::remove_file(dir.join(SERVICE_STATE_FILE)).unwrap();
    assert!(FocusService::recover(&dir, config(8.0), GroundTruthCnn::resnet152()).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// A failed durable seal must not lose the drained time window: the
/// records are restored into the hot tail, stay servable, and the next
/// seal attempt persists them.
#[test]
fn failed_seal_restores_the_tail() {
    let datasets = workload(20.0);
    let requests = request_mix(&datasets, 20.0);
    // A seal budget beyond the recording: everything stays in the tail
    // until seal_all.
    let (mut service, dir) = service_with("seal_failure", 1e9, &datasets);
    for ds in &datasets {
        service.advance(&ds.frames).unwrap();
    }
    let before = service.serve(&requests).unwrap();
    assert!(service.store().is_empty());

    // Block the first centroid delta's path with a directory: the atomic
    // rename fails, the seal errors out.
    let blocker = dir.join("centroids-000000.json");
    std::fs::create_dir(&blocker).unwrap();
    assert!(service.seal_all().is_err());
    assert!(service.store().is_empty(), "nothing was half-sealed");

    // The drained records went back into the tail: identical answers.
    let after_failure = service.serve(&requests).unwrap();
    for (a, b) in before.iter().zip(after_failure.iter()) {
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.objects, b.objects);
    }

    // Clear the fault: the retry seals everything and answers still match.
    std::fs::remove_dir(&blocker).unwrap();
    let sealed = service.seal_all().unwrap();
    assert!(!sealed.is_empty());
    let after_retry = service.serve(&requests).unwrap();
    for (a, b) in before.iter().zip(after_retry.iter()) {
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.objects, b.objects);
    }
    // And the sealed store recovers cleanly.
    drop(service);
    let (recovered, report) =
        FocusService::recover(&dir, config(1e9), GroundTruthCnn::resnet152()).unwrap();
    assert!(report.is_clean(), "{report:?}");
    let after_recovery = recovered.serve(&requests).unwrap();
    for (a, b) in before.iter().zip(after_recovery.iter()) {
        assert_eq!(a.frames, b.frames);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// One operation of the proptest interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Advance the next `frames` interleaved frames.
    Advance(usize),
    /// Serve the standard request mix.
    Serve,
    /// Run a maintenance tick (seals due tails, may compact, drains one
    /// scheduler tick).
    Maintain,
}

/// Decodes a sampled `(kind, frames)` pair into an op: advancing twice as
/// often as the other two, so interleavings make ingest progress.
fn decode_op((kind, frames): (usize, usize)) -> Op {
    match kind {
        0 | 1 => Op::Advance(frames),
        2 => Op::Serve,
        _ => Op::Maintain,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Satellite: for arbitrary interleavings of advance / serve / seal /
    /// compact, query results are byte-identical to a seal-all-then-serve
    /// run over the same frames, and GT-inference counts never exceed the
    /// uncached serial engine's.
    #[test]
    fn arbitrary_interleavings_serve_identically(
        (raw_ops, seal_secs, case) in (
            prop::collection::vec((0usize..4, 64usize..512), 4..12),
            4.0f64..15.0,
            0u64..1_000_000,
        )
    ) {
        let ops: Vec<Op> = raw_ops.into_iter().map(decode_op).collect();
        let secs = 30.0;
        let datasets = workload(secs);
        let frames = interleave(&datasets, 64);
        let requests = request_mix(&datasets, secs);
        let (mut live, live_dir) = service_with(&format!("prop_live_{case}"), seal_secs, &datasets);

        let mut cursor = 0usize;
        let mut service_inferences = 0usize;
        for op in &ops {
            match op {
                Op::Advance(n) => {
                    let end = (cursor + n).min(frames.len());
                    live.advance(&frames[cursor..end]).unwrap();
                    cursor = end;
                }
                Op::Serve => {
                    let outcomes = live.serve(&requests).unwrap();
                    service_inferences +=
                        outcomes.iter().map(|o| o.centroid_inferences).sum::<usize>();
                }
                Op::Maintain => {
                    live.maintain().unwrap();
                }
            }
        }
        let final_outcomes = live.serve(&requests).unwrap();

        // Reference: one fresh service pushes the same prefix, seals
        // everything, then serves cold.
        let (mut reference, ref_dir) =
            service_with(&format!("prop_ref_{case}"), seal_secs, &datasets);
        reference.advance(&frames[..cursor]).unwrap();
        reference.seal_all().unwrap();
        let expected = reference.serve(&requests).unwrap();
        // Accounting differs (the live run may have warmed its verdict
        // cache), but the answers must be identical.
        for (live_outcome, expected_outcome) in final_outcomes.iter().zip(expected.iter()) {
            prop_assert_eq!(&live_outcome.frames, &expected_outcome.frames);
            prop_assert_eq!(&live_outcome.objects, &expected_outcome.objects);
            prop_assert_eq!(live_outcome.matched_clusters, expected_outcome.matched_clusters);
            prop_assert_eq!(
                live_outcome.confirmed_clusters,
                expected_outcome.confirmed_clusters
            );
        }

        // Inference bound: everything the live run spent across its serves
        // is at most the serial engine's per-wave cost times the waves.
        let serves = ops.iter().filter(|o| matches!(o, Op::Serve)).count() + 1;
        let serial_per_wave: usize = expected.iter().map(|o| o.matched_clusters).sum();
        prop_assert!(
            service_inferences + final_outcomes.iter().map(|o| o.centroid_inferences).sum::<usize>()
                <= serial_per_wave * serves
        );
        std::fs::remove_dir_all(&live_dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }
}
