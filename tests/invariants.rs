//! Property-based integration tests over the whole pipeline: whatever the
//! stream characteristics and parameter choices, structural invariants of
//! ingest and query must hold.

use proptest::prelude::*;

use focus::cnn::{Classifier, GroundTruthCnn, ModelSpec};
use focus::core::{IngestCnn, IngestEngine, IngestParams, QueryEngine};
use focus::index::QueryFilter;
use focus::runtime::{GpuClusterSpec, GpuMeter};
use focus::video::profile::{profile_by_name, table1_profiles};
use focus::video::VideoDataset;

/// A small strategy over (stream, duration, K, threshold) pipeline inputs.
fn pipeline_inputs() -> impl Strategy<Value = (usize, f64, usize, f32)> {
    (
        0usize..table1_profiles().len(),
        20.0f64..60.0,
        prop_oneof![Just(1usize), Just(4), Just(10), Just(60)],
        prop_oneof![Just(0.5f32), Just(1.5), Just(3.0)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Ingest never loses or duplicates objects, never classifies more
    /// objects than it saw, and charges GPU time consistent with the model's
    /// per-inference cost.
    #[test]
    fn ingest_structural_invariants((stream, duration, k, threshold) in pipeline_inputs()) {
        let profile = table1_profiles().swap_remove(stream);
        let dataset = VideoDataset::generate(profile, duration);
        let model = IngestCnn::generic(ModelSpec::cheap_cnn_1());
        let per_inference = model.cost_per_inference().seconds();
        let meter = GpuMeter::new();
        let out = IngestEngine::new(
            model,
            IngestParams {
                k,
                cluster_threshold: threshold,
                ..IngestParams::default()
            },
        )
        .ingest(&dataset, &meter);

        // Every object is indexed exactly once across all clusters.
        let indexed: usize = out.index.clusters().map(|c| c.len()).sum();
        prop_assert_eq!(indexed, out.objects_total);
        prop_assert_eq!(out.objects_total, dataset.object_count());
        prop_assert!(out.objects_classified <= out.objects_total);
        prop_assert_eq!(out.clusters, out.index.len());
        // GPU accounting matches the number of inferences.
        let expected = per_inference * out.objects_classified as f64;
        prop_assert!((out.gpu_cost.seconds() - expected).abs() < 1e-9);
        prop_assert!((meter.phase("ingest").seconds() - expected).abs() < 1e-9);
        // Every stored cluster has a centroid observation and valid time
        // bounds.
        for record in out.index.clusters() {
            prop_assert!(out.centroids.contains_key(&record.centroid_object));
            prop_assert!(record.start_secs <= record.end_secs + 1e-9);
            prop_assert!(record.top_k_classes.len() <= k);
            prop_assert!(!record.is_empty());
        }
    }

    /// Query results are always consistent: returned frames exist in the
    /// dataset, confirmed clusters never exceed matched clusters, and the
    /// GPU cost equals one GT-CNN inference per matched cluster.
    #[test]
    fn query_structural_invariants((stream, duration, k, threshold) in pipeline_inputs()) {
        let profile = table1_profiles().swap_remove(stream);
        let dataset = VideoDataset::generate(profile, duration);
        if dataset.object_count() == 0 {
            return Ok(());
        }
        let out = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k,
                cluster_threshold: threshold,
                ..IngestParams::default()
            },
        )
        .ingest(&dataset, &GpuMeter::new());
        let gt = GroundTruthCnn::resnet152();
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let class = dataset.dominant_classes(1)[0];
        let outcome = engine.query(&out, class, &QueryFilter::any(), &GpuMeter::new());

        prop_assert!(outcome.confirmed_clusters <= outcome.matched_clusters);
        prop_assert_eq!(outcome.centroid_inferences, outcome.matched_clusters);
        let expected_cost = gt.cost_per_inference().seconds() * outcome.matched_clusters as f64;
        prop_assert!((outcome.gpu_cost.seconds() - expected_cost).abs() < 1e-9);
        // Frames are sorted, unique, and belong to the dataset.
        let frame_ids: std::collections::HashSet<_> =
            dataset.frames.iter().map(|f| f.frame_id).collect();
        for window in outcome.frames.windows(2) {
            prop_assert!(window[0] < window[1]);
        }
        for frame in &outcome.frames {
            prop_assert!(frame_ids.contains(frame));
        }
        // Objects returned really are members of confirmed clusters of the
        // queried (effective) class.
        prop_assert!(outcome.objects.len() <= dataset.object_count());
    }
}

#[test]
fn dominant_class_query_recall_holds_across_streams() {
    // A coarse cross-stream guarantee: with a wide index (K=200, enough for
    // even the quiet, long-dwell streams per Figure 5) and the ground-truth
    // verification step, the dominant class of every stream is found with
    // high segment recall.
    for name in ["auburn_c", "lausanne", "cnn"] {
        let dataset = VideoDataset::generate(profile_by_name(name).unwrap(), 90.0);
        let out = IngestEngine::new(
            IngestCnn::generic(ModelSpec::cheap_cnn_1()),
            IngestParams {
                k: 200,
                ..IngestParams::default()
            },
        )
        .ingest(&dataset, &GpuMeter::new());
        let gt = GroundTruthCnn::resnet152();
        let labels = focus::core::GroundTruthLabels::compute(&dataset, &gt);
        let class = labels.dominant_classes(1)[0];
        let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
        let outcome = engine.query(&out, class, &QueryFilter::any(), &GpuMeter::new());
        let report = labels.evaluate(class, &outcome.frames);
        assert!(
            report.recall > 0.85,
            "{name}: recall {} for dominant class",
            report.recall
        );
        assert!(
            report.precision > 0.85,
            "{name}: precision {} for dominant class",
            report.precision
        );
    }
}
