//! Drift-injection integration test for the adaptive live service
//! (`focus_core::adapt` + `FocusService`).
//!
//! Scenario: a traffic camera runs long enough to bootstrap and specialize
//! on its daytime class mix, then the content drifts hard (the palette
//! shifts to a different domain — the day/night shift of a long-lived
//! deployment, injected via [`StreamProfile::drifted`] +
//! [`VideoDataset::continue_with`]). Three properties are pinned:
//!
//! 1. **Adaptation restores accuracy**: after the shift, a static service
//!    (specialized once, never re-selected) decays *below* the 95%/95%
//!    accuracy target on the post-drift dominant classes, while the
//!    adaptive service detects the drift, re-selects on a live window and
//!    re-meets the target.
//! 2. **Adapting is metered and bounded**: audit labelling and the
//!    re-selection sweeps are charged to the shared GPU scheduler (phases
//!    `"audit"` / `"selection"`), the cooldown bounds how many sweeps can
//!    run, and their total GPU bill is a bounded fraction of what
//!    ground-truth-ingesting the stream would cost.
//! 3. **Reconfiguration never changes pre-switch results**: queries over
//!    data indexed before the switch answer byte-identically (canonical
//!    JSON) on the live adaptive run and on a twin that sealed everything
//!    durably before installing the same chosen configuration — old
//!    epochs stay reachable exactly as with scheduled retrains.

use focus::cnn::specialize::SpecializationLevel;
use focus::cnn::{Classifier, GroundTruthCnn};
use focus::core::adapt::AdaptationConfig;
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::{
    AccuracyTarget, GroundTruthLabels, IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig,
    TradeoffPolicy,
};
use focus::index::QueryFilter;
use focus::video::profile::{profile_by_name, StreamDomain};
use focus::video::{Frame, VideoDataset};

/// Seconds of pre-drift stream (bootstrap + stable specialized phase).
const PRE_DRIFT_SECS: f64 = 150.0;
/// Seconds of post-drift stream.
const POST_DRIFT_SECS: f64 = 150.0;
/// The post-drift window accuracy is measured on: late enough that the
/// adaptive service has had time to detect the drift and reconfigure.
const EVAL_START_SECS: f64 = 220.0;
/// Seconds of frames pushed per advance tick (one maintenance tick each).
const TICK_SECS: f64 = 5.0;
/// How many of the post-drift dominant classes accuracy is judged on
/// (worst-class, matching the paper's per-class viability rule and the
/// adaptive sweep's `dominant_classes` horizon).
const EVAL_CLASSES: usize = 3;

fn drifted_workload() -> VideoDataset {
    let profile = profile_by_name("auburn_c").unwrap();
    let base = VideoDataset::generate(profile.clone(), PRE_DRIFT_SECS);
    let tail = VideoDataset::generate(
        profile.drifted("night", StreamDomain::News, 11),
        POST_DRIFT_SECS,
    );
    base.continue_with(&tail)
}

fn base_config() -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 2,
                ..IngestParams::default()
            },
            bootstrap_secs: 40.0,
            // The scheduled retrain never fires: without the controller
            // the configuration chosen at bootstrap is final.
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.05,
            ls: 8,
            level: SpecializationLevel::Aggressive,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(20.0),
        ..ServiceConfig::default()
    }
}

fn adaptation() -> AdaptationConfig {
    AdaptationConfig {
        audit_fraction: 0.08,
        window_labels: 150,
        min_window_labels: 40,
        drift_threshold: 0.45,
        window_secs: 30.0,
        cooldown_secs: 90.0,
        target: AccuracyTarget::both(0.95),
        policy: TradeoffPolicy::Balance,
        ..AdaptationConfig::default()
    }
}

/// The workload cut into advance-tick chunks.
fn ticks(workload: &VideoDataset) -> Vec<Vec<Frame>> {
    let per_tick = (TICK_SECS * workload.profile.fps as f64) as usize;
    workload
        .frames
        .chunks(per_tick)
        .map(|chunk| chunk.to_vec())
        .collect()
}

/// The frames of the evaluation window as a dataset (for ground-truth
/// labelling).
fn eval_window(workload: &VideoDataset) -> VideoDataset {
    let frames: Vec<Frame> = workload
        .frames
        .iter()
        .filter(|f| f.timestamp_secs >= EVAL_START_SECS)
        .cloned()
        .collect();
    VideoDataset::from_frames(
        workload.profile.clone(),
        PRE_DRIFT_SECS + POST_DRIFT_SECS - EVAL_START_SECS,
        frames,
    )
}

/// Worst-class precision/recall of one service over the evaluation
/// window's `EVAL_CLASSES` dominant classes.
fn worst_class_accuracy(
    service: &FocusService,
    eval: &VideoDataset,
    labels: &GroundTruthLabels,
) -> (f64, f64) {
    let mut worst_precision = 1.0f64;
    let mut worst_recall = 1.0f64;
    for class in eval.dominant_classes(EVAL_CLASSES) {
        let request = QueryRequest::new(class).with_filter(
            QueryFilter::any().with_time_range(EVAL_START_SECS, PRE_DRIFT_SECS + POST_DRIFT_SECS),
        );
        let outcome = &service.serve(std::slice::from_ref(&request)).unwrap()[0];
        let report = labels.evaluate(class, &outcome.frames);
        worst_precision = worst_precision.min(report.precision);
        worst_recall = worst_recall.min(report.recall);
    }
    (worst_precision, worst_recall)
}

#[test]
fn adaptive_service_restores_accuracy_after_drift_at_bounded_cost() {
    let workload = drifted_workload();
    let stream = workload.profile.stream_id;
    let gt = GroundTruthCnn::resnet152();

    let dir_static = std::env::temp_dir().join("focus_adaptive_drift_static");
    let dir_adaptive = std::env::temp_dir().join("focus_adaptive_drift_adaptive");
    let _ = std::fs::remove_dir_all(&dir_static);
    let _ = std::fs::remove_dir_all(&dir_adaptive);

    let mut static_service = FocusService::create(&dir_static, base_config(), gt.clone()).unwrap();
    let mut adaptive_service = FocusService::create(
        &dir_adaptive,
        ServiceConfig {
            adaptation: Some(adaptation()),
            ..base_config()
        },
        gt.clone(),
    )
    .unwrap();
    static_service
        .register_stream(stream, workload.profile.fps)
        .unwrap();
    adaptive_service
        .register_stream(stream, workload.profile.fps)
        .unwrap();

    for tick in ticks(&workload) {
        static_service.advance(&tick).unwrap();
        static_service.maintain().unwrap();
        adaptive_service.advance(&tick).unwrap();
        adaptive_service.maintain().unwrap();
    }

    // Both services specialized once during bootstrap; only the adaptive
    // one reconfigured afterwards, and the cooldown bounds how often.
    assert_eq!(static_service.stats().retrains, 1);
    assert_eq!(static_service.stats().reconfigurations, 0);
    let adaptive_stats = adaptive_service.stats();
    assert!(
        adaptive_stats.reconfigurations >= 1,
        "the drift must trigger at least one re-selection"
    );
    let cooldown_cap =
        1 + ((PRE_DRIFT_SECS + POST_DRIFT_SECS) / adaptation().cooldown_secs) as usize;
    assert!(
        adaptive_stats.reconfigurations <= cooldown_cap,
        "{} reconfigurations exceed the cooldown cap {}",
        adaptive_stats.reconfigurations,
        cooldown_cap
    );

    // The drift premise: the post-drift dominant classes are (mostly) ones
    // the static model never specialized for.
    let eval = eval_window(&workload);
    let static_specialized = static_service
        .stream_model(stream)
        .unwrap()
        .specialized_classes
        .clone()
        .expect("the static service specialized during bootstrap");
    assert!(
        eval.dominant_classes(EVAL_CLASSES)
            .iter()
            .any(|c| !static_specialized.contains(c)),
        "the injected drift must surface new dominant classes"
    );

    // Worst-class accuracy over the post-drift window.
    let labels = GroundTruthLabels::compute(&eval, &gt);
    let (static_precision, static_recall) = worst_class_accuracy(&static_service, &eval, &labels);
    let (adaptive_precision, adaptive_recall) =
        worst_class_accuracy(&adaptive_service, &eval, &labels);

    let target = AccuracyTarget::both(0.95);
    assert!(
        !target.met_by(static_precision, static_recall),
        "the static configuration should have decayed below 95%/95% \
         (got worst precision {static_precision:.3}, worst recall {static_recall:.3})"
    );
    assert!(
        target.met_by(adaptive_precision, adaptive_recall),
        "the adaptive service must re-meet 95%/95% after the shift \
         (got worst precision {adaptive_precision:.3}, worst recall {adaptive_recall:.3})"
    );

    // Adaptation's GPU bill is metered through the shared scheduler and
    // bounded: audit labelling plus every re-selection sweep together stay
    // well under what ground-truth-ingesting the stream would cost (an
    // unbounded controller — e.g. re-sweeping every tick — would blow far
    // past this).
    let audit = adaptive_stats.gpu.submitted_by_phase["audit"];
    let selection = adaptive_stats.gpu.submitted_by_phase["selection"];
    assert!(audit > 0.0, "audit labels were metered");
    assert!(selection > 0.0, "the re-selection sweeps were metered");
    let gt_ingest_all = gt.cost_per_inference().seconds() * workload.object_count() as f64;
    assert!(
        audit + selection < 0.6 * gt_ingest_all,
        "adaptation cost {:.1}s exceeds 60% of GT-ingest-all ({:.1}s)",
        audit + selection,
        gt_ingest_all
    );
    assert!(
        audit < 0.15 * gt_ingest_all,
        "the audit budget alone must stay a small fraction"
    );
    // And the static run paid none of it.
    let static_stats = static_service.stats();
    assert!(!static_stats.gpu.submitted_by_phase.contains_key("audit"));
    assert!(!static_stats
        .gpu
        .submitted_by_phase
        .contains_key("selection"));

    std::fs::remove_dir_all(&dir_static).ok();
    std::fs::remove_dir_all(&dir_adaptive).ok();
}

#[test]
fn reconfiguration_is_byte_identical_to_a_seal_then_reconfigure_reference() {
    let workload = drifted_workload();
    let stream = workload.profile.stream_id;
    let gt = GroundTruthCnn::resnet152();

    let dir_live = std::env::temp_dir().join("focus_adaptive_pin_live");
    let dir_ref = std::env::temp_dir().join("focus_adaptive_pin_ref");
    let _ = std::fs::remove_dir_all(&dir_live);
    let _ = std::fs::remove_dir_all(&dir_ref);

    // The live run reconfigures through the controller mid-stream; the
    // reference runs without adaptation and is driven in lockstep.
    let mut live = FocusService::create(
        &dir_live,
        ServiceConfig {
            adaptation: Some(adaptation()),
            ..base_config()
        },
        gt.clone(),
    )
    .unwrap();
    let mut reference = FocusService::create(&dir_ref, base_config(), gt.clone()).unwrap();
    live.register_stream(stream, workload.profile.fps).unwrap();
    reference
        .register_stream(stream, workload.profile.fps)
        .unwrap();

    // Phase 1: lockstep until the live controller's first reconfiguration.
    let chunks = ticks(&workload);
    let mut tick = 0usize;
    while tick < chunks.len() && live.stats().reconfigurations == 0 {
        live.advance(&chunks[tick]).unwrap();
        live.maintain().unwrap();
        reference.advance(&chunks[tick]).unwrap();
        reference.maintain().unwrap();
        tick += 1;
    }
    assert_eq!(
        live.stats().reconfigurations,
        1,
        "the live controller must reconfigure within the workload"
    );
    // The stream time of the switch: the live controller reconfigured in
    // the maintenance call after chunk `tick - 1`.
    let switch_secs = tick as f64 * TICK_SECS;
    let event = live
        .stream_controller(stream)
        .unwrap()
        .last_reconfiguration()
        .expect("controller recorded the reconfiguration")
        .clone();

    // The reference seals *everything* durably, then installs the same
    // chosen configuration by hand.
    reference.seal_all().unwrap();
    reference
        .install_configuration(stream, &event.selection)
        .unwrap();
    assert_eq!(reference.stats().reconfigurations, 1);

    // Phase 2: both keep ingesting past the switch (staying inside the
    // live cooldown so no second reconfiguration diverges the models).
    let more_ticks =
        ((adaptation().cooldown_secs / TICK_SECS) as usize - 2).min(chunks.len() - tick);
    for chunk in chunks[tick..tick + more_ticks].iter() {
        live.advance(chunk).unwrap();
        live.maintain().unwrap();
        reference.advance(chunk).unwrap();
        reference.maintain().unwrap();
    }
    assert_eq!(live.stats().reconfigurations, 1, "cooldown held");

    // Queries over pre-switch data answer byte-identically: installing
    // the new configuration never rewrote, re-keyed or hid a single
    // record indexed before the switch. (Post-switch data is a different
    // run by construction — the reference's seal-all restarted its
    // segment clock — which is exactly why the guarantee is scoped to the
    // data that existed when the configuration changed.)
    let end = switch_secs - 0.5;
    let classes = workload.dominant_classes(2);
    let mut requests = Vec::new();
    for &class in &classes {
        requests.push(
            QueryRequest::new(class).with_filter(QueryFilter::any().with_time_range(0.0, end)),
        );
        requests.push(
            QueryRequest::new(class)
                .with_filter(QueryFilter::any().with_time_range(0.0, end / 2.0)),
        );
        requests.push(
            QueryRequest::new(class).with_filter(
                QueryFilter::any()
                    .with_time_range((end - 20.0).max(0.0), end)
                    .with_kx(2),
            ),
        );
    }
    let live_outcomes = live.serve(&requests).unwrap();
    let reference_outcomes = reference.serve(&requests).unwrap();
    assert!(
        live_outcomes.iter().any(|o| !o.frames.is_empty()),
        "the pre-switch window must actually hold results"
    );
    assert_eq!(
        serde_json::to_string(&live_outcomes).unwrap(),
        serde_json::to_string(&reference_outcomes).unwrap(),
        "live reconfiguration and seal-then-reconfigure must answer \
         byte-identically on pre-switch data"
    );

    std::fs::remove_dir_all(&dir_live).ok();
    std::fs::remove_dir_all(&dir_ref).ok();
}
