//! Integration tests for the multi-tenant request plane
//! ([`focus::core::serving`]): under a virtual clock, for arbitrary
//! per-tenant arrival schedules, every admitted request is answered
//! byte-identically to a direct [`FocusService::serve`] call, no admitted
//! request is answered past its deadline, and shed requests receive an
//! explicit `Overloaded` without ever consuming a ground-truth inference.
//! A 10× overload soak pins the bounded queue, the convergent shed
//! fraction and post-storm latency recovery.

use proptest::prelude::*;

use focus::cnn::{GpuCost, GroundTruthCnn};
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::serving::{
    Completed, RequestPlane, Response, ServingConfig, ShedReason, TenantConfig, TenantId,
};
use focus::core::{IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig};
use focus::index::QueryFilter;
use focus::runtime::{GpuClusterSpec, VirtualClock};
use focus::video::profile::profile_by_name;
use focus::video::{Frame, VideoDataset};

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_serving_plane_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Specialization disabled (stable ground-truth epoch), short seals: the
/// backend is deterministic, so plane-vs-direct comparisons are exact.
fn config() -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(8.0),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn interleave(datasets: &[VideoDataset], chunk: usize) -> Vec<Frame> {
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames = Vec::new();
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(ds.frames.len());
            if *cursor < end {
                frames.extend(ds.frames[*cursor..end].iter().cloned());
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            return frames;
        }
    }
}

/// A fully ingested service: the plane then runs a pure query phase
/// against it (queries never mutate the index).
fn ingested_service(name: &str, datasets: &[VideoDataset], frames: &[Frame]) -> FocusService {
    let dir = test_dir(name);
    let mut service = FocusService::create(&dir, config(), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    service.advance(frames).unwrap();
    service
}

fn request_pool(datasets: &[VideoDataset], secs: f64) -> Vec<QueryRequest> {
    let classes = datasets[0].dominant_classes(2);
    let second = classes.get(1).copied().unwrap_or(classes[0]);
    vec![
        QueryRequest::new(classes[0]),
        QueryRequest::new(classes[0])
            .with_filter(QueryFilter::any().with_time_range(0.0, secs / 2.0)),
        QueryRequest::new(second),
        QueryRequest::new(second).with_filter(QueryFilter::any().with_time_range(secs / 3.0, secs)),
    ]
}

/// The stable payload of an outcome: result frames and objects. The
/// accounting fields (inference counts, GPU cost, latency) legitimately
/// differ between batched-plane and one-at-a-time serving.
fn payload_json(outcome: &focus::core::QueryOutcome) -> String {
    serde_json::to_string(&(&outcome.frames, &outcome.objects)).unwrap()
}

/// Three tenants with different rates, weights and latency budgets.
fn plane_config() -> ServingConfig {
    ServingConfig {
        queue_bound: 64,
        batch_max_requests: 6,
        dispatch_margin_secs: 0.1,
        ..ServingConfig::default()
    }
    .with_tenant(
        TenantId(0),
        TenantConfig {
            weight: 3.0,
            rate_per_sec: 40.0,
            burst: 8.0,
            deadline_secs: 0.8,
        },
    )
    .with_tenant(
        TenantId(1),
        TenantConfig {
            weight: 1.0,
            rate_per_sec: 15.0,
            burst: 4.0,
            deadline_secs: 1.5,
        },
    )
    .with_tenant(
        TenantId(2),
        TenantConfig {
            weight: 0.0, // lowest priority, must still not starve
            rate_per_sec: 8.0,
            burst: 2.0,
            deadline_secs: 0.5,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Satellite: over arbitrary per-tenant arrival schedules on a virtual
    /// clock — (a) every answered request is byte-identical (frames and
    /// objects) to serving it directly, (b) no admitted request is
    /// answered after its deadline, (c) shed and expired requests never
    /// reach the backend, so they consume zero GT inferences.
    #[test]
    fn arbitrary_schedules_serve_identically_and_respect_deadlines(
        (schedule, case) in (
            prop::collection::vec((0usize..3, 0usize..4, 0.0f64..0.25), 40..90),
            0u64..1_000_000,
        )
    ) {
        let secs = 20.0;
        let datasets = workload(secs);
        let frames = interleave(&datasets, 64);
        let pool = request_pool(&datasets, secs);
        let service = ingested_service(&format!("prop_{case}"), &datasets, &frames);
        let reference = ingested_service(&format!("prop_ref_{case}"), &datasets, &frames);

        let clock = VirtualClock::new();
        let plane = RequestPlane::new(plane_config(), Arc::new(clock.clone()));

        let mut admitted_requests: BTreeMap<u64, QueryRequest> = BTreeMap::new();
        let mut sheds = 0u64;
        let mut completed: Vec<Completed> = Vec::new();
        for &(tenant, req_idx, dt) in &schedule {
            clock.advance(dt);
            while plane.batch_ready() {
                completed.extend(plane.dispatch(&service).unwrap());
            }
            match plane.submit(TenantId(tenant as u32), pool[req_idx].clone()) {
                Ok(ticket) => {
                    admitted_requests.insert(ticket.0, pool[req_idx].clone());
                }
                Err(overloaded) => {
                    // (c) sheds are explicit and actionable.
                    prop_assert!(overloaded.retry_after_secs >= 0.0);
                    prop_assert!(matches!(
                        overloaded.reason,
                        ShedReason::RateLimited | ShedReason::QueueFull
                    ));
                    sheds += 1;
                }
            }
        }
        completed.extend(plane.flush_with(|batch| service.serve(batch)).unwrap());

        let stats = plane.serving_stats();
        prop_assert!(stats.conserves(0), "conservation: {stats:?}");
        prop_assert_eq!(stats.shed(), sheds);
        prop_assert_eq!(stats.admitted as usize, completed.len());
        prop_assert!(stats.max_queue_len as usize <= plane.config().queue_bound);

        let mut answered = 0usize;
        for c in &completed {
            let request = &admitted_requests[&c.ticket.0];
            match &c.response {
                Response::Answered(outcome) => {
                    answered += 1;
                    // (b) answered within the deadline: the virtual clock
                    // only advances between plane operations, so a request
                    // alive at batch formation completes on time.
                    prop_assert!(!c.deadline_missed, "ticket {:?}", c.ticket);
                    // (a) byte-identical payload to a direct serve call.
                    let direct = reference
                        .serve(std::slice::from_ref(request))
                        .unwrap()
                        .remove(0);
                    prop_assert_eq!(payload_json(outcome), payload_json(&direct));
                }
                Response::DeadlineExpired => {
                    prop_assert!(c.deadline_missed);
                }
            }
        }
        prop_assert_eq!(answered as u64, stats.answered);
        // (c) only answered requests ever reached the backend: sheds and
        // expiries cost zero queries and therefore zero GT inferences.
        prop_assert_eq!(service.stats().queries_served, answered);
        // The plane folds its stats into the unified service snapshot.
        prop_assert_eq!(&plane.stats(&service).serving, &stats);
    }
}

/// Satellite: a storm at ~10× sustainable capacity. The queue never
/// exceeds its bound, the shed fraction converges to the overload ratio,
/// and once the storm passes latency recovers to the pre-storm level.
#[test]
fn overload_soak_sheds_converge_and_recover() {
    let clock = VirtualClock::new();
    let config = ServingConfig {
        queue_bound: 32,
        batch_max_requests: 16,
        dispatch_margin_secs: 0.05,
        default_tenant: TenantConfig {
            weight: 1.0,
            rate_per_sec: 40.0,
            burst: 16.0,
            deadline_secs: 1.0,
        },
        tenants: Vec::new(),
    };
    let plane = RequestPlane::new(config, Arc::new(clock.clone()));
    let tenant = TenantId(9);
    let request = QueryRequest::new(focus::video::ClassId(1));
    let echo = |batch: &[QueryRequest]| {
        Ok(batch
            .iter()
            .map(|req| focus::core::QueryOutcome {
                class: req.class,
                frames: Vec::new(),
                objects: Vec::new(),
                matched_clusters: 0,
                confirmed_clusters: 0,
                centroid_inferences: 0,
                gpu_cost: GpuCost::default(),
                latency_secs: 0.0,
            })
            .collect())
    };

    // Storm: 400 submits/sec against a 40/sec bucket for 20 virtual
    // seconds, dispatching whenever the plane says a batch is due.
    let dt = 1.0 / 400.0;
    let storm_secs = 20.0;
    let mut max_queue_seen = 0usize;
    let mut window_sheds: Vec<(u64, u64)> = Vec::new(); // (submitted, shed) per 5s window
    let mut last = (0u64, 0u64);
    let steps = (storm_secs / dt) as usize;
    for step in 0..steps {
        clock.advance(dt);
        while plane.batch_ready() {
            plane.dispatch_with(echo).unwrap();
        }
        let _ = plane.submit(tenant, request.clone());
        max_queue_seen = max_queue_seen.max(plane.queue_len());
        if (step + 1) % (steps / 4) == 0 {
            let stats = plane.serving_stats();
            window_sheds.push((stats.submitted - last.0, stats.shed() - last.1));
            last = (stats.submitted, stats.shed());
        }
    }

    let stats = plane.serving_stats();
    assert!(
        max_queue_seen <= 32 && stats.max_queue_len <= 32,
        "queue bounded: {max_queue_seen}"
    );
    assert!(stats.shed() > 0 && stats.answered > 0);

    // Shed fraction converges to the overload ratio (1 − 40/400 = 0.9) in
    // every steady window after the initial burst absorbs the bucket.
    for (i, &(submitted, shed)) in window_sheds.iter().enumerate().skip(1) {
        let fraction = shed as f64 / submitted as f64;
        assert!(
            (0.85..=0.95).contains(&fraction),
            "window {i}: shed fraction {fraction}"
        );
    }

    // Backend stall: stop dispatching for two virtual seconds while the
    // storm continues. The queue parks at its bound and admissible
    // submits shed QueueFull instead of growing memory without bound.
    let before_stall = plane.serving_stats();
    for _ in 0..800 {
        clock.advance(dt);
        let _ = plane.submit(tenant, request.clone());
        max_queue_seen = max_queue_seen.max(plane.queue_len());
    }
    let after_stall = plane.serving_stats();
    assert!(
        after_stall.shed_queue_full > before_stall.shed_queue_full,
        "stall sheds QueueFull: {after_stall:?}"
    );
    assert!(max_queue_seen <= 32, "bound holds through the stall");

    // Post-storm: drain, let the bucket breathe, and check latency
    // recovers — a fresh submit is admitted and answered well inside its
    // deadline instead of queueing behind storm leftovers.
    plane.flush_with(echo).unwrap();
    clock.advance(5.0);
    let before = plane.serving_stats();
    plane
        .submit(tenant, request.clone())
        .expect("post-storm submit admitted");
    let completed = plane.flush_with(echo).unwrap();
    assert_eq!(completed.len(), 1);
    assert!(matches!(completed[0].response, Response::Answered(_)));
    assert!(
        completed[0].latency_secs < 0.05,
        "post-storm latency {} recovered",
        completed[0].latency_secs
    );
    assert!(!completed[0].deadline_missed);
    let after = plane.serving_stats();
    assert_eq!(after.answered, before.answered + 1);
    assert!(after.conserves(0));
}
