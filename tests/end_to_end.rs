//! Cross-crate integration tests: the full Focus pipeline against the
//! paper's baselines, the component ablation ordering and the trade-off
//! policies.

use focus::core::{
    AblationMode, AccuracyTarget, ExperimentConfig, ExperimentRunner, TradeoffPolicy,
};
use focus::video::profile::profile_by_name;

fn quick_config() -> ExperimentConfig {
    ExperimentConfig {
        target: AccuracyTarget::both(0.9),
        ..ExperimentConfig::quick()
    }
}

#[test]
fn focus_beats_both_baselines_on_a_busy_stream() {
    let profile = profile_by_name("auburn_c").unwrap();
    let report = ExperimentRunner::new(quick_config())
        .run_stream(&profile)
        .expect("a viable configuration exists");
    // The headline claim of the paper, in qualitative form: large ingest
    // savings over Ingest-all and large query speed-ups over Query-all while
    // staying close to the ground truth.
    assert!(
        report.ingest_cheaper_factor > 10.0,
        "ingest only {}x cheaper",
        report.ingest_cheaper_factor
    );
    assert!(
        report.query_faster_factor > 5.0,
        "query only {}x faster",
        report.query_faster_factor
    );
    assert!(
        report.mean_precision >= 0.85,
        "precision {}",
        report.mean_precision
    );
    assert!(report.mean_recall >= 0.85, "recall {}", report.mean_recall);
    // Accounting sanity: Focus's ingest GPU time must be far below the
    // baseline's, and clusters can never outnumber objects.
    assert!(report.ingest_gpu_secs < report.ingest_all_gpu_secs);
    assert!(report.clusters <= report.objects);
    assert!(report.queries.iter().all(|q| q.latency_secs >= 0.0));
}

#[test]
fn ablation_components_compose() {
    // Figure 8: each component (specialization, clustering) adds query
    // speed-up on top of the previous one, and specialization is the main
    // source of ingest savings.
    let profile = profile_by_name("jacksonh").unwrap();
    let mut query_factors = Vec::new();
    let mut ingest_factors = Vec::new();
    for mode in AblationMode::all() {
        let report = ExperimentRunner::new(ExperimentConfig {
            ablation: mode,
            // The paper's default targets; at 95%/95% the very cheap generic
            // models are not accurate enough, which is what makes
            // specialization the main source of ingest savings.
            target: AccuracyTarget::both(0.95),
            ..ExperimentConfig::quick()
        })
        .run_stream(&profile)
        .expect("viable configuration for every ablation mode");
        query_factors.push(report.query_faster_factor);
        ingest_factors.push(report.ingest_cheaper_factor);
    }
    // Query speed-up strictly improves as components are added.
    assert!(
        query_factors[1] > query_factors[0] * 0.9,
        "specialization should not hurt query latency: {query_factors:?}"
    );
    assert!(
        query_factors[2] > query_factors[1],
        "clustering must further reduce query latency: {query_factors:?}"
    );
    // Specialization is the main source of ingest savings.
    assert!(
        ingest_factors[1] > ingest_factors[0],
        "specialization must reduce ingest cost: {ingest_factors:?}"
    );
    // Clustering costs (almost) nothing at ingest time.
    assert!(
        ingest_factors[2] > ingest_factors[1] * 0.8,
        "clustering must not add significant ingest cost: {ingest_factors:?}"
    );
}

#[test]
fn tradeoff_policies_are_ordered() {
    let profile = profile_by_name("sittard").unwrap();
    let mut by_policy = Vec::new();
    for policy in TradeoffPolicy::all() {
        let report = ExperimentRunner::new(ExperimentConfig {
            policy,
            ..quick_config()
        })
        .run_stream(&profile)
        .expect("viable configuration for every policy");
        by_policy.push((policy, report));
    }
    let opt_ingest = &by_policy[0].1;
    let balance = &by_policy[1].1;
    let opt_query = &by_policy[2].1;
    // Opt-Ingest never spends more on ingest than the other policies;
    // Opt-Query is never slower than the other policies.
    assert!(opt_ingest.ingest_gpu_secs <= balance.ingest_gpu_secs + 1e-9);
    assert!(opt_ingest.ingest_gpu_secs <= opt_query.ingest_gpu_secs + 1e-9);
    assert!(opt_query.mean_query_latency_secs <= balance.mean_query_latency_secs + 1e-9);
    assert!(opt_query.mean_query_latency_secs <= opt_ingest.mean_query_latency_secs + 1e-9);
    // All policies still meet the accuracy target on average.
    for (_, report) in &by_policy {
        assert!(report.mean_precision >= 0.8);
        assert!(report.mean_recall >= 0.8);
    }
}

#[test]
fn query_rate_extremes_stay_favourable() {
    // §6.7: Focus remains cheaper than Ingest-all even if everything is
    // queried, and faster than Query-all even if it defers all work to query
    // time.
    let profile = profile_by_name("sittard").unwrap();
    let report = ExperimentRunner::new(quick_config())
        .run_stream(&profile)
        .expect("viable configuration");
    assert!(
        report.all_queried_cheaper_factor > 1.5,
        "all-queried factor {}",
        report.all_queried_cheaper_factor
    );
    assert!(
        report.query_time_only_faster_factor > 3.0,
        "query-time-only factor {}",
        report.query_time_only_faster_factor
    );
}

#[test]
fn lower_frame_rates_reduce_clustering_benefit() {
    // §6.6: at 1 fps there is far less redundancy between frames, so the
    // query speed-up shrinks relative to 30 fps (while remaining > 1).
    let profile = profile_by_name("auburn_c").unwrap();
    let at_30 = ExperimentRunner::new(quick_config())
        .run_stream(&profile)
        .expect("viable at 30 fps");
    let at_1 = ExperimentRunner::new(ExperimentConfig {
        frame_rate: Some(1),
        ..quick_config()
    })
    .run_stream(&profile)
    .expect("viable at 1 fps");
    assert!(at_1.objects < at_30.objects);
    assert!(
        at_1.query_faster_factor < at_30.query_faster_factor,
        "30 fps {} vs 1 fps {}",
        at_30.query_faster_factor,
        at_1.query_faster_factor
    );
    assert!(at_1.query_faster_factor > 1.0);
}
