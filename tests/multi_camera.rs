//! Integration test: multi-camera ingestion through the sharded pipeline
//! into one merged index, with camera- and time-restricted queries (the
//! paper's query formulation in §3 allows restricting a query to a subset
//! of cameras and a time range).

use focus::cnn::{GroundTruthCnn, ModelSpec};
use focus::core::{IngestCnn, IngestParams, QueryEngine, ShardedIngest};
use focus::index::QueryFilter;
use focus::runtime::{GpuClusterSpec, GpuMeter};
use focus::video::profile::profile_by_name;
use focus::video::{StreamId, VideoDataset};

#[test]
fn merged_index_answers_camera_and_time_restricted_queries() {
    let cameras = ["auburn_c", "city_a_d"];
    let datasets: Vec<VideoDataset> = cameras
        .iter()
        .map(|camera| VideoDataset::generate(profile_by_name(camera).unwrap(), 120.0))
        .collect();
    let stream_ids: Vec<StreamId> = datasets.iter().map(|d| d.profile.stream_id).collect();

    // One shard per camera, ingested in parallel and merged.
    let sharded = ShardedIngest::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
        cameras.len(),
    );
    let meter = GpuMeter::new();
    let combined = sharded.ingest(&datasets, &meter).into_combined();
    assert_eq!(combined.index.streams(), {
        let mut ids = stream_ids.clone();
        ids.sort();
        ids
    });

    let class = datasets[0].dominant_classes(1)[0];
    let query_engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(8));

    // Unrestricted query sees frames from both cameras.
    let all = query_engine.query(&combined, class, &QueryFilter::any(), &meter);
    assert!(!all.frames.is_empty());

    // Camera-restricted query only returns clusters of that camera.
    for stream in &stream_ids {
        let filter = QueryFilter::for_stream(*stream);
        let restricted = query_engine.query(&combined, class, &filter, &meter);
        assert!(restricted.matched_clusters <= all.matched_clusters);
        for record in combined.index.lookup(class, &filter) {
            assert_eq!(record.key.stream, *stream);
        }
    }

    // Time-restricted query to the first 30 seconds never returns clusters
    // that start after the window.
    let early = QueryFilter::any().with_time_range(0.0, 30.0);
    for record in combined.index.lookup(class, &early) {
        assert!(record.start_secs <= 30.0);
    }

    // Restricting to a camera that was never ingested returns nothing.
    let ghost = QueryFilter::for_stream(StreamId(999));
    let nothing = query_engine.query(&combined, class, &ghost, &meter);
    assert_eq!(nothing.matched_clusters, 0);
    assert!(nothing.frames.is_empty());
}
