//! The refactor invariant of the sharded ingest layer: for any shard count,
//! parallel per-stream ingest must be indistinguishable from a serial run —
//! identical `TopKIndex` contents (byte-for-byte through the canonical JSON
//! snapshot) and identical `GpuMeter` totals (bitwise f64 equality).

use focus::cnn::ModelSpec;
use focus::core::{ingest_serial, IngestCnn, IngestEngine, IngestParams, ShardedIngest};
use focus::index::{persist, TopKIndex};
use focus::runtime::{GpuMeter, WorkerPool};
use focus::video::profile::profile_by_name;
use focus::video::VideoDataset;

/// The seeded 3-stream workload: three Table-1 cameras with different
/// domains and activity levels. Dataset generation is deterministic per
/// profile seed, so every run of this test sees the same frames.
fn three_stream_workload() -> Vec<VideoDataset> {
    ["auburn_c", "lausanne", "cnn"]
        .iter()
        .map(|name| VideoDataset::generate(profile_by_name(name).unwrap(), 60.0))
        .collect()
}

fn engine(k: usize) -> IngestEngine {
    IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k,
            ..IngestParams::default()
        },
    )
}

/// Canonical byte representation of an index (records sorted by key).
fn index_bytes(index: &TopKIndex) -> String {
    persist::to_json(index).unwrap()
}

#[test]
fn serial_and_sharded_ingest_are_bit_identical() {
    let datasets = three_stream_workload();
    let engine = engine(10);

    let serial_meter = GpuMeter::new();
    let serial = ingest_serial(&engine, &datasets, &serial_meter);
    let serial_index = index_bytes(&serial.merged_index());

    for shards in 1..=4 {
        let sharded_meter = GpuMeter::new();
        let sharded = ShardedIngest::with_pool(engine.clone(), WorkerPool::new(shards));
        let output = sharded.ingest(&datasets, &sharded_meter);

        // Identical index contents, byte for byte.
        assert_eq!(
            index_bytes(&output.merged_index()),
            serial_index,
            "index mismatch with {shards} shards"
        );

        // Identical GPU accounting: bitwise-equal meter totals and bitwise
        // equal per-stream costs, in workload order.
        assert_eq!(
            sharded_meter.total().seconds().to_bits(),
            serial_meter.total().seconds().to_bits(),
            "meter total mismatch with {shards} shards"
        );
        assert_eq!(
            sharded_meter.phase("ingest").seconds().to_bits(),
            serial_meter.phase("ingest").seconds().to_bits()
        );
        for (a, b) in output.per_stream.iter().zip(serial.per_stream.iter()) {
            assert_eq!(
                a.gpu_cost.seconds().to_bits(),
                b.gpu_cost.seconds().to_bits()
            );
            assert_eq!(a.objects_total, b.objects_total);
            assert_eq!(a.objects_classified, b.objects_classified);
            assert_eq!(a.clusters, b.clusters);
        }
    }
}

#[test]
fn sharded_ingest_matches_per_stream_engine_runs() {
    // A shard is exactly one batch-engine run: the sharded layer must add
    // nothing and lose nothing relative to calling the engine directly.
    let datasets = three_stream_workload();
    let engine = engine(4);
    let sharded = ShardedIngest::with_pool(engine.clone(), WorkerPool::new(2));
    let output = sharded.ingest(&datasets, &GpuMeter::new());
    for (dataset, shard) in datasets.iter().zip(output.per_stream.iter()) {
        let direct = engine.ingest(dataset, &GpuMeter::new());
        assert_eq!(index_bytes(&shard.index), index_bytes(&direct.index));
        assert_eq!(
            shard.gpu_cost.seconds().to_bits(),
            direct.gpu_cost.seconds().to_bits()
        );
    }
}

#[test]
fn equivalence_holds_across_parameter_variants() {
    // The invariant is not an artifact of one parameter choice: it holds
    // with clustering disabled and with pixel differencing disabled too.
    let datasets = three_stream_workload();
    for params in [
        IngestParams {
            enable_clustering: false,
            ..IngestParams::default()
        },
        IngestParams {
            pixel_differencing: false,
            ..IngestParams::default()
        },
    ] {
        let engine = IngestEngine::new(IngestCnn::generic(ModelSpec::cheap_cnn_2()), params);
        let serial_meter = GpuMeter::new();
        let serial = ingest_serial(&engine, &datasets, &serial_meter);
        let sharded_meter = GpuMeter::new();
        let sharded = ShardedIngest::with_pool(engine.clone(), WorkerPool::new(4))
            .ingest(&datasets, &sharded_meter);
        assert_eq!(
            index_bytes(&sharded.merged_index()),
            index_bytes(&serial.merged_index())
        );
        assert_eq!(
            sharded_meter.total().seconds().to_bits(),
            serial_meter.total().seconds().to_bits()
        );
    }
}
