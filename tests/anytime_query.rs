//! Integration tests for anytime query execution
//! ([`focus::core::query::anytime`]): for arbitrary seal boundaries
//! (which change the chunk partition) and arbitrary chunk-pick orders, a
//! run-to-exhaustion anytime query is byte-identical (canonical
//! serde_json payload) to the exhaustive planner, spends no more GT
//! inferences than it, and its per-round `inferences_spent` sums exactly
//! to the meter's `"anytime"` phase total. Deterministic tests pin the
//! budget and confidence terminations, the `"anytime"` scheduler phase in
//! `ServiceStats`, and the request plane's streaming-partials dispatch
//! with its `first_result_latency` histogram.

use proptest::prelude::*;

use focus::cnn::{Classifier, GroundTruthCnn};
use focus::core::query::{AnytimeMode, AnytimeTermination, ChunkEstimate};
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::serving::{AnytimeResponse, RequestPlane, ServingConfig, TenantId};
use focus::core::{IngestParams, QueryRequest, SealPolicy, StreamWorkerConfig};
use focus::runtime::{GpuClusterSpec, GpuMeter, VirtualClock};
use focus::video::profile::profile_by_name;
use focus::video::{Frame, FrameId, ObjectId, VideoDataset};

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("focus_anytime_query_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Specialization disabled (stable ground-truth epoch): the backend is
/// deterministic, so anytime-vs-exhaustive comparisons are exact.
fn config(seal_secs: f64) -> ServiceConfig {
    ServiceConfig {
        worker: StreamWorkerConfig {
            params: IngestParams {
                k: 10,
                ..IngestParams::default()
            },
            bootstrap_secs: 1e9,
            retrain_interval_secs: 1e9,
            gt_label_fraction: 0.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(seal_secs),
        gpus: GpuClusterSpec::new(4),
        ..ServiceConfig::default()
    }
}

fn workload(secs: f64) -> Vec<VideoDataset> {
    ["auburn_c", "lausanne"]
        .iter()
        .map(|n| VideoDataset::generate(profile_by_name(n).unwrap(), secs))
        .collect()
}

fn interleave(datasets: &[VideoDataset], chunk: usize) -> Vec<Frame> {
    let mut cursors = vec![0usize; datasets.len()];
    let mut frames = Vec::new();
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + chunk).min(ds.frames.len());
            if *cursor < end {
                frames.extend(ds.frames[*cursor..end].iter().cloned());
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            return frames;
        }
    }
}

fn ingested_service(
    name: &str,
    seal_secs: f64,
    datasets: &[VideoDataset],
    frames: &[Frame],
) -> FocusService {
    let dir = test_dir(name);
    let mut service =
        FocusService::create(&dir, config(seal_secs), GroundTruthCnn::resnet152()).unwrap();
    for ds in datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    service.advance(frames).unwrap();
    service
}

/// The stable payload of an outcome: result frames and objects. The
/// accounting fields legitimately differ between execution modes.
fn payload_json(outcome: &focus::core::QueryOutcome) -> String {
    serde_json::to_string(&(&outcome.frames, &outcome.objects)).unwrap()
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        .. ProptestConfig::default()
    })]

    /// Tentpole pin: for arbitrary seal boundaries (chunk partitions),
    /// round budgets and chunk-pick orders, run-to-exhaustion anytime
    /// execution (a) returns a payload byte-identical to the exhaustive
    /// planner's, (b) spends no more GT inferences than it, (c) reports
    /// per-round `inferences_spent` that sum exactly to the meter's
    /// `"anytime"` phase, and (d) streams partials whose union is exactly
    /// the final result set.
    #[test]
    fn exhaustion_is_byte_identical_for_any_seal_and_pick_order(
        (seal_secs, pick_seed, round_budget, case) in (
            4.0f64..16.0,
            1u64..1_000_000,
            1usize..5,
            0u64..1_000_000,
        )
    ) {
        let secs = 20.0;
        let datasets = workload(secs);
        let frames = interleave(&datasets, 64);
        let service = ingested_service(&format!("prop_{case}"), seal_secs, &datasets, &frames);
        let reference =
            ingested_service(&format!("prop_ref_{case}"), seal_secs, &datasets, &frames);
        let class = datasets[0].dominant_classes(1)[0];
        let request = QueryRequest::new(class).with_anytime(AnytimeMode::incremental(round_budget));

        // Exhaustive answer and its fresh-inference bill, on an identical
        // twin whose verdict cache has seen nothing else.
        let exhaustive = reference
            .serve(std::slice::from_ref(&request))
            .unwrap()
            .remove(0);

        // Anytime run driven directly so the meter is observable, with an
        // arbitrary (seeded) chunk-pick order.
        let tail = service.tail_snapshot();
        let plan = service
            .corpus()
            .plan_anytime_with_tail(&request, Some(&tail))
            .unwrap();
        let meter = GpuMeter::new();
        let mut seed = pick_seed;
        let anytime = focus::core::query::run_anytime_with_picker(
            service.query_server(),
            &plan,
            &request.anytime,
            |id| {
                service
                    .corpus()
                    .centroids
                    .get(&id)
                    .or_else(|| tail.centroid(id))
                    .cloned()
            },
            &meter,
            |_| {},
            |estimates: &[ChunkEstimate]| {
                let eligible: Vec<usize> = estimates
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.remaining > 0)
                    .map(|(i, _)| i)
                    .collect();
                eligible[(xorshift(&mut seed) as usize) % eligible.len()]
            },
        );

        // (a) byte-identical payload at candidate exhaustion.
        prop_assert_eq!(anytime.termination, AnytimeTermination::CandidatesExhausted);
        prop_assert_eq!(payload_json(&anytime.outcome), payload_json(&exhaustive));

        // (b) no more GT inferences than the exhaustive planner spent.
        prop_assert!(
            anytime.fresh_inferences <= exhaustive.centroid_inferences,
            "anytime {} > exhaustive {}",
            anytime.fresh_inferences,
            exhaustive.centroid_inferences
        );

        // (c) per-round accounting is conserved: the partials sum to the
        // run's fresh total, and re-charging each round's batch cost in
        // round order reproduces the meter's "anytime" phase exactly.
        let per_round: usize = anytime.partials.iter().map(|p| p.inferences_spent).sum();
        prop_assert_eq!(per_round, anytime.fresh_inferences);
        let batching = service.query_server().batching();
        let per_inference = service.query_server().ground_truth().cost_per_inference();
        let expected = GpuMeter::new();
        for partial in &anytime.partials {
            expected.charge(
                "anytime",
                batching.batch_cost(per_inference, partial.inferences_spent),
            );
        }
        prop_assert_eq!(
            meter.phase("anytime").seconds(),
            expected.phase("anytime").seconds()
        );
        prop_assert_eq!(meter.total().seconds(), meter.phase("anytime").seconds());

        // (d) the streamed partials cover the final result set exactly.
        let streamed_objects: BTreeSet<ObjectId> = anytime
            .partials
            .iter()
            .flat_map(|p| p.new_results.iter().copied())
            .collect();
        let streamed_frames: BTreeSet<FrameId> = anytime
            .partials
            .iter()
            .flat_map(|p| p.new_frames.iter().copied())
            .collect();
        let final_objects: BTreeSet<ObjectId> = anytime.outcome.objects.iter().copied().collect();
        let final_frames: BTreeSet<FrameId> = anytime.outcome.frames.iter().copied().collect();
        prop_assert_eq!(streamed_objects, final_objects);
        prop_assert_eq!(streamed_frames, final_frames);
    }
}

/// A small fresh-inference budget stops the loop early with an honest
/// termination reason, partial results that are a subset of the
/// exhaustive answer, and a bill within the budget.
#[test]
fn budget_exhaustion_stops_early_with_partial_results() {
    let secs = 20.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let service = ingested_service("budget", 6.0, &datasets, &frames);
    let reference = ingested_service("budget_ref", 6.0, &datasets, &frames);
    let class = datasets[0].dominant_classes(1)[0];

    let exhaustive = reference
        .serve(&[QueryRequest::new(class)])
        .unwrap()
        .remove(0);
    assert!(
        exhaustive.centroid_inferences > 3,
        "workload must be large enough to cut short"
    );
    let budget = 3;
    let request = QueryRequest::new(class)
        .with_anytime(AnytimeMode::incremental(2).with_max_inferences(budget));
    let anytime = service.serve_anytime(&request).unwrap();

    assert_eq!(anytime.termination, AnytimeTermination::BudgetExhausted);
    assert!(anytime.fresh_inferences <= budget, "budget respected");
    assert!(
        anytime.fresh_inferences < exhaustive.centroid_inferences,
        "strictly fewer inferences than exhaustive"
    );
    let exhaustive_objects: BTreeSet<ObjectId> = exhaustive.objects.iter().copied().collect();
    for object in &anytime.outcome.objects {
        assert!(
            exhaustive_objects.contains(object),
            "partial results are a subset of the exhaustive answer"
        );
    }

    // The anytime GPU work was submitted to the shared scheduler under
    // its own phase, on the query side of the budget.
    let stats = service.stats();
    let anytime_secs = stats
        .gpu
        .submitted_by_phase
        .get("anytime")
        .copied()
        .unwrap_or(0.0);
    assert!(anytime_secs > 0.0, "anytime phase visible in ServiceStats");
    assert_eq!(stats.queries_served, 1);
}

/// A loose confidence threshold stops the loop before exhaustion once the
/// estimated remaining-result fraction decays below it.
#[test]
fn confidence_threshold_terminates_before_exhaustion() {
    let secs = 20.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let service = ingested_service("confidence", 5.0, &datasets, &frames);
    let class = datasets[0].dominant_classes(1)[0];

    let request = QueryRequest::new(class)
        .with_anytime(AnytimeMode::incremental(2).with_confidence_remaining(0.6));
    let anytime = service.serve_anytime(&request).unwrap();
    match anytime.termination {
        AnytimeTermination::ConfidenceReached => {
            let last = anytime.partials.last().expect("at least one round ran");
            assert!(last.est_remaining_frac <= 0.6);
        }
        AnytimeTermination::CandidatesExhausted => {
            // Legal when the candidate set is small enough that exhaustion
            // wins the race; the estimate must then read zero.
            assert_eq!(
                anytime.partials.last().map(|p| p.est_remaining_frac),
                Some(0.0)
            );
        }
        AnytimeTermination::BudgetExhausted => {
            panic!("no budget was set");
        }
    }
}

/// The request plane's streaming-partials dispatch: an anytime request
/// spends one admission token at submit, streams ticket-tagged partials
/// during dispatch, lands its first-result latency in the
/// `first_result_latency` histogram, and folds into the unified
/// `ServiceStats` snapshot.
#[test]
fn plane_streams_partials_and_records_first_result_latency() {
    let secs = 20.0;
    let datasets = workload(secs);
    let frames = interleave(&datasets, 64);
    let service = ingested_service("plane", 6.0, &datasets, &frames);
    let reference = ingested_service("plane_ref", 6.0, &datasets, &frames);
    let class = datasets[0].dominant_classes(1)[0];
    let request = QueryRequest::new(class).with_anytime(AnytimeMode::incremental(4));

    let clock = VirtualClock::new();
    let plane = RequestPlane::new(ServingConfig::default(), Arc::new(clock.clone()));
    let tenant = TenantId(7);
    let ticket = plane.submit(tenant, request.clone()).unwrap();
    clock.advance(0.01);

    let mut streamed = Vec::new();
    let completed = plane
        .dispatch_anytime(&service, |t, partial| streamed.push((t, partial.clone())))
        .unwrap();
    assert_eq!(completed.len(), 1);
    let done = &completed[0];
    assert_eq!(done.ticket, ticket);
    assert_eq!(done.tenant, tenant);
    assert!(!done.deadline_missed);

    let AnytimeResponse::Answered(outcome) = &done.response else {
        panic!("request answered");
    };
    assert_eq!(outcome.termination, AnytimeTermination::CandidatesExhausted);
    // The streamed partials are exactly the outcome's trail, all tagged
    // with this request's ticket.
    assert_eq!(streamed.len(), outcome.partials.len());
    for ((t, streamed_partial), partial) in streamed.iter().zip(outcome.partials.iter()) {
        assert_eq!(*t, ticket);
        assert_eq!(streamed_partial, partial);
    }
    // Byte-identical to a direct exhaustive serve.
    let direct = reference
        .serve(std::slice::from_ref(&request))
        .unwrap()
        .remove(0);
    assert_eq!(payload_json(&outcome.outcome), payload_json(&direct));

    // First-result latency: finite (results exist), at least the queue
    // wait, and recorded in the plane histogram that ServiceStats folds.
    assert!(done.first_result_latency_secs.is_finite());
    assert!(done.first_result_latency_secs >= 0.01);
    assert!(done.first_result_latency_secs <= done.latency_secs + outcome.outcome.latency_secs);
    let stats = plane.stats(&service);
    assert_eq!(stats.serving.first_result_latency.count(), 1);
    assert_eq!(stats.serving.answered, 1);
    assert!(stats.serving.conserves(0));
    // One admission token bought the whole partial stream: exactly one
    // submit is accounted, however many rounds streamed.
    assert_eq!(stats.serving.submitted, 1);
    assert!(streamed.len() > 1, "multiple rounds streamed");
}
