//! Integration test: the top-K index produced by ingest survives a
//! persistence round-trip and keeps answering queries identically.

use focus::cnn::{GroundTruthCnn, ModelSpec};
use focus::core::{IngestCnn, IngestEngine, IngestParams, QueryEngine};
use focus::index::{persist, QueryFilter};
use focus::runtime::{GpuClusterSpec, GpuMeter};
use focus::video::profile::profile_by_name;
use focus::video::VideoDataset;

#[test]
fn index_snapshot_roundtrip_preserves_query_results() {
    let dataset = VideoDataset::generate(profile_by_name("lausanne").unwrap(), 120.0);
    let ingest = IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
    )
    .ingest(&dataset, &GpuMeter::new());

    // Snapshot the index to JSON and restore it.
    let json = persist::to_json(&ingest.index).expect("index serializes");
    let restored = persist::from_json(&json).expect("index deserializes");
    assert_eq!(restored.len(), ingest.index.len());
    assert_eq!(restored.stats(), ingest.index.stats());

    // Lookups on the restored index match the original for every indexed
    // class.
    for class in ingest.index.indexed_classes() {
        let original: Vec<_> = ingest
            .index
            .lookup(class, &QueryFilter::any())
            .iter()
            .map(|r| r.key)
            .collect();
        let roundtrip: Vec<_> = restored
            .lookup(class, &QueryFilter::any())
            .iter()
            .map(|r| r.key)
            .collect();
        assert_eq!(original, roundtrip, "postings differ for {class}");
    }

    // A query executed against the restored index returns the same frames.
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let class = dataset.dominant_classes(1)[0];
    let before = engine.query(&ingest, class, &QueryFilter::any(), &GpuMeter::new());
    let mut swapped = ingest.clone();
    swapped.index = restored;
    let after = engine.query(&swapped, class, &QueryFilter::any(), &GpuMeter::new());
    assert_eq!(before.frames, after.frames);
    assert_eq!(before.matched_clusters, after.matched_clusters);
}

#[test]
fn file_snapshot_roundtrip() {
    let dataset = VideoDataset::generate(profile_by_name("bend").unwrap(), 60.0);
    let ingest = IngestEngine::new(
        IngestCnn::generic(ModelSpec::cheap_cnn_2()),
        IngestParams::default(),
    )
    .ingest(&dataset, &GpuMeter::new());
    let dir = std::env::temp_dir().join("focus_integration_persist");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lausanne_index.json");
    persist::save(&ingest.index, &path).expect("snapshot written");
    let restored = persist::load(&path).expect("snapshot read");
    assert_eq!(restored.len(), ingest.index.len());
    std::fs::remove_file(&path).ok();
}
