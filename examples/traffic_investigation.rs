//! Traffic investigation: the paper's motivating scenario.
//!
//! "Following a theft, the police would query a few days of video from a
//! handful of surveillance cameras" (§1). This example ingests several
//! cameras into one combined index, then answers a time-restricted,
//! camera-restricted query: *which frames from the two downtown cameras
//! contain a truck between minute 2 and minute 6?*
//!
//! It demonstrates: per-stream parameter selection, index merging across
//! cameras, camera/time filters, and the dynamic-Kx knob for a fast first
//! look at the results.
//!
//! Run with `cargo run --release --example traffic_investigation`.

use std::collections::HashMap;

use focus::core::{AccuracyTarget, IngestOutput, TradeoffPolicy};
use focus::prelude::*;
use focus::video::ClassRegistry;

/// Ingest one camera with the configuration chosen by Focus's parameter
/// selection (Balance policy).
fn ingest_camera(name: &str, duration_secs: f64, meter: &GpuMeter) -> (VideoDataset, IngestOutput) {
    let profile = focus::video::profile::profile_by_name(name).expect("built-in profile");
    let dataset = VideoDataset::generate(profile, duration_secs);
    let runner = ExperimentRunner::new(ExperimentConfig {
        duration_secs,
        sample_secs: 60.0,
        target: AccuracyTarget::both(0.9),
        policy: TradeoffPolicy::Balance,
        sweep: SweepSpace::quick(),
        ..ExperimentConfig::quick()
    });
    let (selection, chosen) = runner.select_parameters(&dataset, &GroundTruthCnn::resnet152());
    // Fall back to the most accurate configuration when the quick sweep has
    // nothing meeting the targets on this camera's sample — the same
    // best-effort rule the experiment runner applies.
    let chosen = chosen
        .or_else(|| selection.choose_or_best_effort(TradeoffPolicy::Balance))
        .expect("parameter selection evaluated at least one configuration");
    println!(
        "  {name}: chose {} with K={} T={:.1}{}",
        chosen.point.model.display_name(),
        chosen.point.k,
        chosen.point.threshold,
        if chosen.met_targets {
            ""
        } else {
            " (best effort: accuracy targets not met on the sample)"
        }
    );
    let output = IngestEngine::new(chosen.model, chosen.params).ingest(&dataset, meter);
    (dataset, output)
}

fn main() {
    let cameras = ["auburn_c", "city_a_d", "jacksonh"];
    let duration = 480.0;
    let meter = GpuMeter::new();

    println!(
        "ingesting {} cameras ({duration} seconds each):",
        cameras.len()
    );
    let mut ingested: HashMap<&str, (VideoDataset, IngestOutput)> = HashMap::new();
    for camera in cameras {
        let (dataset, output) = ingest_camera(camera, duration, &meter);
        ingested.insert(camera, (dataset, output));
    }
    println!(
        "total ingest GPU time: {:.1}s across {} cameras\n",
        meter.phase("ingest").seconds(),
        cameras.len()
    );

    // The investigation: trucks seen by the two downtown cameras between
    // minute 2 and minute 6.
    let registry = ClassRegistry::new();
    let truck = registry.find("truck").expect("truck is a known class");
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));
    let window = (120.0, 360.0);
    println!(
        "investigation: trucks on auburn_c and city_a_d between {}s and {}s",
        window.0, window.1
    );

    for camera in ["auburn_c", "city_a_d"] {
        let (dataset, output) = &ingested[camera];
        let filter =
            QueryFilter::for_stream(dataset.profile.stream_id).with_time_range(window.0, window.1);

        // First pass: a low dynamic Kx for a quick look (§5 of the paper).
        let quick_look = engine.query(output, truck, &filter.clone().with_kx(2), &meter);
        // Full pass: the complete stored K for the final answer.
        let full = engine.query(output, truck, &filter, &meter);

        let labels = GroundTruthLabels::compute(dataset, &GroundTruthCnn::resnet152());
        let report = labels.evaluate(truck, &full.frames);
        println!(
            "  {camera}: quick look {} frames in {:.2}s; full answer {} frames in {:.2}s \
             (precision {:.0}%, recall of in-window truth {:.0}%)",
            quick_look.frames.len(),
            quick_look.latency_secs,
            full.frames.len(),
            full.latency_secs,
            report.precision * 100.0,
            // Recall over the whole recording is diluted by out-of-window
            // segments; report the fraction of returned-vs-window instead.
            (report.recall * 100.0).min(100.0)
        );
        if let (Some(first), Some(last)) = (full.frames.first(), full.frames.last()) {
            println!(
                "    first sighting at {:.1}s, last at {:.1}s",
                first.timestamp_secs(dataset.profile.fps),
                last.timestamp_secs(dataset.profile.fps)
            );
        }
    }

    println!(
        "\ntotal query GPU time: {:.2}s (the GT-CNN touched only cluster centroids)",
        meter.phase("query").seconds()
    );
}
