//! Accuracy sweep: how the cost/latency savings respond to the accuracy
//! target (the §6.5 experiment, Figures 10 and 11, on a single stream).
//!
//! Runs the full Focus pipeline on one stream at 90%, 95%, 97% and 99%
//! precision/recall targets and prints the achieved accuracy together with
//! the ingest-cost and query-latency factors.
//!
//! Usage: `cargo run --release --example accuracy_sweep [stream_name]`
//! (default stream: `jacksonh`).

use focus::core::AccuracyTarget;
use focus::prelude::*;

fn main() {
    let stream = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jacksonh".to_string());
    let profile = focus::video::profile::profile_by_name(&stream)
        .unwrap_or_else(|| panic!("unknown stream '{stream}'"));

    println!(
        "accuracy-target sweep on {} ({})\n",
        profile.name, profile.description
    );
    println!(
        "{:>7} {:>28} {:>4} {:>16} {:>16} {:>10} {:>10}",
        "target", "chosen model", "K", "ingest cheaper", "query faster", "precision", "recall"
    );

    for target in [0.90, 0.95, 0.97, 0.99] {
        let runner = ExperimentRunner::new(ExperimentConfig {
            duration_secs: 300.0,
            sample_secs: 90.0,
            target: AccuracyTarget::both(target),
            ..ExperimentConfig::default()
        });
        match runner.run_stream(&profile) {
            Ok(report) => println!(
                "{:>6.0}% {:>28} {:>4} {:>15.0}x {:>15.0}x {:>9.1}% {:>9.1}%",
                target * 100.0,
                report.chosen_model,
                report.chosen_k,
                report.ingest_cheaper_factor,
                report.query_faster_factor,
                report.mean_precision * 100.0,
                report.mean_recall * 100.0
            ),
            Err(err) => println!("{:>6.0}% no viable configuration ({err})", target * 100.0),
        }
    }

    println!(
        "\nPaper behaviour (§6.5): the ingest cost stays roughly constant across \
         targets while the query-latency gain shrinks as the target rises, \
         because more top-K results must be kept and verified."
    );
}
