//! Live ingestion: frame-by-frame processing of a camera with bootstrap
//! specialization and periodic retraining.
//!
//! The batch examples ingest a recorded dataset in one call. Real
//! deployments run one worker process per live stream (§5 of the paper);
//! this example drives [`StreamWorker`] the same way:
//!
//! * the first minute is indexed with a generic compressed CNN while a
//!   ground-truth-labelled sample accumulates,
//! * the worker then trains a per-stream specialized model and keeps
//!   retraining it periodically (§4.3),
//! * at the end the accumulated top-K index answers queries exactly like a
//!   batch-ingested one.
//!
//! Run with `cargo run --release --example live_pipeline`.

use focus::core::IngestParams;
use focus::prelude::*;
use focus::video::{ClassRegistry, VideoStream};

fn main() {
    let profile = focus::video::profile::profile_by_name("jacksonh").expect("built-in profile");
    println!(
        "starting live worker for {} ({}), 8 minutes of simulated video",
        profile.name, profile.description
    );

    let meter = GpuMeter::new();
    let mut worker = StreamWorker::new(
        profile.stream_id,
        profile.fps,
        StreamWorkerConfig {
            params: IngestParams {
                k: 2,
                ..IngestParams::default()
            },
            bootstrap_secs: 60.0,
            retrain_interval_secs: 120.0,
            gt_label_fraction: 0.02,
            ..StreamWorkerConfig::default()
        },
        GroundTruthCnn::resnet152(),
        meter.clone(),
    );

    // Drive the live stream one frame at a time, reporting once a minute.
    let duration_secs = 480.0;
    let mut frames = Vec::new();
    for frame in VideoStream::recording(profile.clone(), duration_secs) {
        worker.push_frame(&frame);
        if frame.frame_id.0 % (60 * profile.fps as u64) == 0 && frame.frame_id.0 > 0 {
            let stats = worker.stats();
            println!(
                "  t={:>4.0}s  model={:<40} objects={:>6} classified={:>6} GT-labelled={:>4} retrains={}",
                frame.timestamp_secs,
                worker.current_model().descriptor.display_name(),
                stats.objects,
                stats.objects_classified,
                stats.objects_gt_labelled,
                stats.retrains
            );
        }
        frames.push(frame);
    }

    let output = worker.finalize();
    println!(
        "\nfinalized: {} clusters over {} objects; ingest GPU {:.1}s + specialization GPU {:.1}s",
        output.clusters,
        output.objects_total,
        meter.phase("ingest").seconds(),
        meter.phase("specialization").seconds()
    );

    // Query the live-built index.
    let registry = ClassRegistry::new();
    let person = registry.find("person").expect("person is a known class");
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));
    let outcome = engine.query(&output, person, &QueryFilter::any(), &meter);

    let dataset = VideoDataset::from_frames(profile, duration_secs, frames);
    let labels = GroundTruthLabels::compute(&dataset, &GroundTruthCnn::resnet152());
    let report = labels.evaluate(person, &outcome.frames);
    println!(
        "query 'person': {} frames in {:.2}s (precision {:.1}%, recall {:.1}%)",
        outcome.frames.len(),
        outcome.latency_secs,
        report.precision * 100.0,
        report.recall * 100.0
    );
}
