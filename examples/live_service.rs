//! Live service: one long-lived object ingesting and serving at once.
//!
//! The other examples run Focus as two batch phases; this one runs it the
//! way a deployment would — a [`FocusService`] that interleaves ingest
//! ticks with query waves:
//!
//! 1. register two cameras and **bootstrap** them with a generic cheap
//!    CNN while a GT-labelled sample accumulates,
//! 2. keep advancing until each stream **specializes** (retrains swap the
//!    stream's model and bump the verdict-cache epoch automatically),
//! 3. issue **live queries mid-ingest**: answers come from the union of
//!    durable segments and the in-memory hot tail, snapshot-consistently,
//! 4. **restart**: drop the service, recover it from the manifest + the
//!    service sidecar, and keep ingesting and serving.
//!
//! Run with `cargo run --release --example live_service`.

use focus::cnn::GroundTruthCnn;
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::{QueryRequest, SealPolicy, StreamWorkerConfig};
use focus::index::QueryFilter;
use focus::runtime::GpuPriorityPolicy;
use focus::video::profile::profile_by_name;
use focus::video::VideoDataset;

fn main() {
    let dir = std::env::temp_dir().join("focus_example_live_service");
    let _ = std::fs::remove_dir_all(&dir);

    // 1. A service with 30-second segments, specialization after one
    //    minute, and a query-first GPU budget.
    let config = ServiceConfig {
        worker: StreamWorkerConfig {
            bootstrap_secs: 60.0,
            retrain_interval_secs: 90.0,
            ..StreamWorkerConfig::default()
        },
        seal: SealPolicy::every_secs(30.0),
        priority: GpuPriorityPolicy::QueryFirst,
        ..ServiceConfig::default()
    };
    let mut service =
        FocusService::create(&dir, config.clone(), GroundTruthCnn::resnet152()).expect("store");

    let datasets: Vec<VideoDataset> = ["auburn_c", "lausanne"]
        .iter()
        .map(|name| VideoDataset::generate(profile_by_name(name).unwrap(), 240.0))
        .collect();
    for ds in &datasets {
        service
            .register_stream(ds.profile.stream_id, ds.profile.fps)
            .unwrap();
    }
    let class = datasets[0].dominant_classes(1)[0];
    println!(
        "live service over {} cameras, querying class {}\n",
        datasets.len(),
        class.0
    );

    // 2. Advance in ~20-second ticks, serving a query wave after each.
    let tick_frames = 600; // 20 s at 30 fps
    let mut cursors = vec![0usize; datasets.len()];
    let mut wave = 0usize;
    loop {
        let mut progressed = false;
        for (ds, cursor) in datasets.iter().zip(cursors.iter_mut()) {
            let end = (*cursor + tick_frames).min(ds.frames.len());
            if *cursor < end {
                let report = service.advance(&ds.frames[*cursor..end]).unwrap();
                if report.retrains > 0 {
                    println!(
                        "  stream {} specialized -> {} (verdict-cache epoch {})",
                        ds.profile.stream_id.0,
                        service
                            .stream_model(ds.profile.stream_id)
                            .unwrap()
                            .descriptor
                            .display_name(),
                        service.query_server().epoch()
                    );
                }
                *cursor = end;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
        service.maintain().unwrap();

        // 3. A query wave mid-ingest: the tail answers the newest window.
        wave += 1;
        let outcomes = service
            .serve(&[
                QueryRequest::new(class),
                QueryRequest::new(class).with_filter(QueryFilter::any().with_time_range(0.0, 30.0)),
            ])
            .unwrap();
        let stats = service.stats();
        println!(
            "wave {wave:2}: {:5} frames answered | {:2} segments | tail-hit {:4.1}% | \
             cache hit-rate {:4.1}% | GPU backlog i/q {:5.2}/{:5.2}s",
            outcomes[0].frames.len(),
            stats.segments,
            100.0 * stats.tail_hit_fraction(),
            100.0 * stats.cache.hit_rate(),
            stats.gpu.ingest_backlog_secs,
            stats.gpu.query_backlog_secs,
        );
    }

    let before = service.stats();
    println!(
        "\ningested {} objects into {} segments ({} sealed, {} compactions, {} retrains)",
        before.objects_indexed,
        before.segments,
        before.segments_sealed,
        before.compactions,
        before.retrains
    );

    // 4. Restart: drop the live object, recover from the manifest and the
    //    durable sidecar, and carry on.
    let final_wave = service.serve(&[QueryRequest::new(class)]).unwrap();
    drop(service);
    let (recovered, report) =
        FocusService::recover(&dir, config, GroundTruthCnn::resnet152()).expect("recovery");
    println!(
        "\nrecovered from manifest: {} segments, repairs clean = {}",
        recovered.store().len(),
        report.is_clean()
    );
    let after_restart = recovered.serve(&[QueryRequest::new(class)]).unwrap();
    println!(
        "query after restart: {} frames (pre-restart sealed view had {})",
        after_restart[0].frames.len(),
        final_wave[0].frames.len(),
    );
    assert!(!after_restart[0].frames.is_empty());

    std::fs::remove_dir_all(&dir).ok();
    println!("\ndone.");
}
