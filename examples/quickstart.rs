//! Quickstart: ingest one synthetic camera and query it for cars.
//!
//! This is the smallest end-to-end use of the public API:
//!
//! 1. generate a recording of a busy traffic intersection,
//! 2. ingest it with a cheap compressed CNN (building the top-K index),
//! 3. query for the frames that contain a car,
//! 4. verify the answer against the ground-truth CNN.
//!
//! Run with `cargo run --release --example quickstart`.

use focus::prelude::*;
use focus::video::ClassRegistry;

fn main() {
    // 1. A five-minute recording of the `auburn_c` traffic camera profile.
    let profile = focus::video::profile::profile_by_name("auburn_c").expect("built-in profile");
    println!(
        "recording 5 minutes of {} ({})",
        profile.name, profile.description
    );
    let dataset = VideoDataset::generate(profile, 300.0);
    println!(
        "  {} frames, {} moving objects",
        dataset.frames.len(),
        dataset.object_count()
    );

    // 2. Ingest with a generic compressed CNN (ResNet18-class, ~8x cheaper
    //    than the ground truth) and a top-60 index — the operating point
    //    Figure 5 of the paper picks for this model. (Per-stream specialized
    //    models do even better; see the live_pipeline and
    //    traffic_investigation examples.)
    let meter = GpuMeter::new();
    let ingest = IngestEngine::new(
        IngestCnn::generic(focus::cnn::ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 60,
            ..IngestParams::default()
        },
    )
    .ingest(&dataset, &meter);
    println!(
        "ingested: {} objects classified ({} skipped by pixel differencing), {} clusters, {:.1} GPU-seconds",
        ingest.objects_classified,
        ingest.objects_total - ingest.objects_classified,
        ingest.clusters,
        ingest.gpu_cost.seconds()
    );

    // 3. Query: "find all frames with a car", on a 10-GPU cluster.
    let registry = ClassRegistry::new();
    let car = registry.find("car").expect("car is a known class");
    let engine = QueryEngine::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(10));
    let outcome = engine.query(&ingest, car, &QueryFilter::any(), &meter);
    println!(
        "query 'car': {} frames returned, {} clusters verified by the GT-CNN, latency {:.2}s",
        outcome.frames.len(),
        outcome.centroid_inferences,
        outcome.latency_secs
    );

    // 4. Evaluate against the ground-truth CNN (the paper's 1-second-segment
    //    smoothing rule).
    let labels = GroundTruthLabels::compute(&dataset, &GroundTruthCnn::resnet152());
    let report = labels.evaluate(car, &outcome.frames);
    println!(
        "accuracy vs ground truth: precision {:.1}%, recall {:.1}%",
        report.precision * 100.0,
        report.recall * 100.0
    );

    // How much work did we save compared to the brute-force baselines?
    let baselines = focus::core::BaselineCosts::compute(
        &dataset,
        &GroundTruthCnn::resnet152(),
        GpuClusterSpec::new(10),
    );
    println!(
        "vs baselines: ingest {:.0}x cheaper than Ingest-all, query {:.0}x faster than Query-all",
        baselines.ingest_cheaper_factor(ingest.gpu_cost),
        baselines.query_faster_factor(outcome.latency_secs)
    );
}
