//! Segmented archive: durable, time-partitioned index storage with pruned
//! time-window queries.
//!
//! A surveillance deployment ingests continuously for weeks; the index
//! cannot live as one in-memory map that dies with the process. This
//! example shows the storage subsystem end to end:
//!
//! 1. ingest two cameras, sealing the index into durable 30-second
//!    segments as ingest progresses,
//! 2. reopen the store from disk (crash recovery path) and serve
//!    time-windowed queries that open only the intersecting segments,
//! 3. compact the small segments into larger ones and show the results
//!    are unchanged.
//!
//! Run with `cargo run --release --example segmented_archive`.

use focus::cnn::GroundTruthCnn;
use focus::core::segment_ingest::{SealPolicy, SegmentedIngest};
use focus::core::{IngestCnn, IngestParams, QueryRequest, QueryServer, SegmentedCorpus};
use focus::index::{QueryFilter, SegmentStore};
use focus::runtime::{GpuClusterSpec, GpuMeter, IoMeter, SegmentLoadCost};
use focus::video::profile::profile_by_name;
use focus::video::VideoDataset;

fn main() {
    // 1. Four minutes from two cameras, sealed every 30 seconds.
    let datasets: Vec<VideoDataset> = ["auburn_c", "lausanne"]
        .iter()
        .map(|name| VideoDataset::generate(profile_by_name(name).unwrap(), 240.0))
        .collect();
    let dir = std::env::temp_dir().join("focus_example_segmented_archive");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SegmentStore::create(&dir).expect("fresh store");

    let ingest = SegmentedIngest::new(
        IngestCnn::generic(focus::cnn::ModelSpec::cheap_cnn_1()),
        IngestParams {
            k: 10,
            ..IngestParams::default()
        },
        SealPolicy::every_secs(30.0),
        2,
    );
    let meter = GpuMeter::new();
    let output = ingest
        .ingest_to_store(&datasets, &mut store, &meter)
        .expect("segmented ingest");
    println!(
        "ingested {} objects from {} cameras into {} durable segments ({} clusters, {:.1} GPU-s)",
        output.combined.objects_total,
        datasets.len(),
        output.sealed.len(),
        output.combined.clusters,
        output.combined.gpu_cost.seconds(),
    );
    for meta in output.sealed.iter().take(3) {
        println!(
            "  {}  [{:6.1}s, {:6.1}s]  {} clusters  checksum {:#018x}",
            meta.file, meta.t_start, meta.t_end, meta.clusters, meta.checksum
        );
    }
    println!("  ... ({} more)", output.sealed.len().saturating_sub(3));

    // 2. Reopen from disk — the path a restarted service takes — and serve
    //    a time-windowed investigation: "cars around the 2-minute mark".
    drop(store);
    let (store, report) = SegmentStore::open(&dir).expect("reopen");
    assert!(report.is_clean(), "unexpected repairs: {report:?}");
    println!(
        "\nreopened store: {} segments, {} clusters, manifest clean",
        store.len(),
        store.total_clusters()
    );
    let corpus = SegmentedCorpus::from_output(store, &output);
    let server = QueryServer::new(GroundTruthCnn::resnet152(), GpuClusterSpec::new(4));
    let class = datasets[0].dominant_classes(1)[0];
    let io = IoMeter::new();
    let window =
        QueryRequest::new(class).with_filter(QueryFilter::any().with_time_range(110.0, 130.0));
    let outcomes = server
        .serve_segmented(
            &corpus,
            std::slice::from_ref(&window),
            &GpuMeter::new(),
            &io,
        )
        .expect("segmented serve");
    let stats = io.snapshot();
    println!(
        "time-window query [110s, 130s] for {class}: {} frames from {} confirmed clusters",
        outcomes[0].frames.len(),
        outcomes[0].confirmed_clusters
    );
    println!(
        "  opened {} of {} segments (pruned {}), {} cold loads / {} KiB read, ~{:.1} ms modelled storage",
        stats.segments_opened(),
        corpus.store().len(),
        corpus.store().len() - stats.segments_opened(),
        stats.segment_loads,
        stats.bytes_read / 1024,
        SegmentLoadCost::default().stats_secs(&stats) * 1e3,
    );

    // A repeat of the same window is served from the LRU: no disk reads.
    io.reset();
    server
        .serve_segmented(
            &corpus,
            std::slice::from_ref(&window),
            &GpuMeter::new(),
            &io,
        )
        .expect("warm serve");
    println!(
        "  repeat: {} cache hits, {} cold loads (segment LRU warm)",
        io.snapshot().cache_hits,
        io.snapshot().segment_loads
    );

    // 3. Compact: fold the 30-second segments into few large ones, then
    //    prove the query answer did not change.
    let mut corpus = corpus;
    let before = outcomes;
    let folded = corpus.store_mut().compact(1000).expect("compaction");
    println!(
        "\ncompacted: folded {} segments away, {} remain",
        folded,
        corpus.store().len()
    );
    let after = server
        .serve_segmented(
            &corpus,
            std::slice::from_ref(&window),
            &GpuMeter::new(),
            &IoMeter::new(),
        )
        .expect("post-compaction serve");
    assert_eq!(before[0].frames, after[0].frames);
    assert_eq!(before[0].objects, after[0].objects);
    println!(
        "post-compaction query results are identical — storage layout is invisible to queries"
    );

    std::fs::remove_dir_all(&dir).ok();
}
