//! Trade-off explorer: inspect the ingest-cost / query-latency space.
//!
//! Runs Focus's parameter selection for one stream, prints every viable
//! configuration, marks the Pareto boundary and shows what each trade-off
//! policy (Opt-Ingest / Balance / Opt-Query) would pick — the machinery
//! behind Figures 1 and 6 of the paper.
//!
//! Usage: `cargo run --release --example tradeoff_explorer [stream_name]`
//! (default stream: `auburn_c`).

use focus::core::TradeoffPolicy;
use focus::prelude::*;

fn main() {
    let stream = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "auburn_c".to_string());
    let Some(profile) = focus::video::profile::profile_by_name(&stream) else {
        eprintln!("unknown stream '{stream}'; available streams:");
        for p in focus::video::profile::table1_profiles() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    println!(
        "parameter selection for {} ({})",
        profile.name, profile.description
    );
    let runner = ExperimentRunner::new(ExperimentConfig {
        duration_secs: 300.0,
        sample_secs: 90.0,
        ..ExperimentConfig::default()
    });
    let dataset = runner.dataset_for(&profile);
    let (selection, _) = runner.select_parameters(&dataset, &GroundTruthCnn::resnet152());

    println!(
        "{} configurations evaluated, {} meet the 95%/95% accuracy target, {} on the Pareto boundary\n",
        selection.evaluated.len(),
        selection.viable.len(),
        selection.pareto.len()
    );

    println!(
        "{:<42} {:>4} {:>5} {:>12} {:>12} {:>6} {:>6}  pareto",
        "model", "K", "T", "ingest(norm)", "query(norm)", "prec", "rec"
    );
    for point in &selection.viable {
        let on_pareto = selection
            .pareto
            .iter()
            .any(|p| p.model == point.model && p.k == point.k && p.threshold == point.threshold);
        println!(
            "{:<42} {:>4} {:>5.2} {:>12.4} {:>12.4} {:>6.2} {:>6.2}  {}",
            point.model.display_name(),
            point.k,
            point.threshold,
            point.ingest_cost_norm,
            point.query_latency_norm,
            point.precision,
            point.recall,
            if on_pareto { "*" } else { "" }
        );
    }

    println!("\npolicy picks:");
    for policy in TradeoffPolicy::all() {
        match selection.choose(policy) {
            Some(chosen) => println!(
                "  {:<18} -> {} (K={}, T={:.1}): ingest {:.0}x cheaper, queries {:.0}x faster than the brute-force baselines",
                policy.name(),
                chosen.point.model.display_name(),
                chosen.point.k,
                chosen.point.threshold,
                1.0 / chosen.point.ingest_cost_norm,
                1.0 / chosen.point.query_latency_norm
            ),
            None => println!("  {:<18} -> no viable configuration", policy.name()),
        }
    }
}
