//! Trade-off explorer: inspect the ingest-cost / query-latency space —
//! statically and *live*.
//!
//! **Act 1** runs Focus's parameter selection for one stream, prints every
//! viable configuration, marks the Pareto boundary and shows what each
//! trade-off policy (Opt-Ingest / Balance / Opt-Query) would pick — the
//! machinery behind Figures 1 and 6 of the paper.
//!
//! **Act 2** makes the policies' *dynamic* behaviour visible: for each
//! policy, a live adaptive [`FocusService`] ingests the same camera
//! through an injected class-distribution drift (traffic by day, news
//! palette by night). The drift-aware controller detects the shift,
//! re-runs the sweep on a live window and installs whatever *its* policy
//! picks — so the acts together show the same trade-off knob first as a
//! one-shot choice and then as a feedback loop.
//!
//! Usage: `cargo run --release --example tradeoff_explorer [stream_name]`
//! (default stream: `auburn_c`).

use focus::cnn::GroundTruthCnn;
use focus::core::adapt::AdaptationConfig;
use focus::core::service::{FocusService, ServiceConfig};
use focus::core::{SealPolicy, StreamWorkerConfig, TradeoffPolicy};
use focus::prelude::*;
use focus::video::profile::StreamDomain;
use focus::video::StreamProfile;

fn main() {
    let stream = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "auburn_c".to_string());
    let Some(profile) = focus::video::profile::profile_by_name(&stream) else {
        eprintln!("unknown stream '{stream}'; available streams:");
        for p in focus::video::profile::table1_profiles() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    println!(
        "parameter selection for {} ({})",
        profile.name, profile.description
    );
    let runner = ExperimentRunner::new(ExperimentConfig {
        duration_secs: 300.0,
        sample_secs: 90.0,
        ..ExperimentConfig::default()
    });
    let dataset = runner.dataset_for(&profile);
    let (selection, _) = runner.select_parameters(&dataset, &GroundTruthCnn::resnet152());

    println!(
        "{} configurations evaluated, {} meet the 95%/95% accuracy target, {} on the Pareto boundary\n",
        selection.evaluated.len(),
        selection.viable.len(),
        selection.pareto.len()
    );

    println!(
        "{:<42} {:>4} {:>5} {:>12} {:>12} {:>6} {:>6}  pareto",
        "model", "K", "T", "ingest(norm)", "query(norm)", "prec", "rec"
    );
    for point in &selection.viable {
        let on_pareto = selection
            .pareto
            .iter()
            .any(|p| p.model == point.model && p.k == point.k && p.threshold == point.threshold);
        println!(
            "{:<42} {:>4} {:>5.2} {:>12.4} {:>12.4} {:>6.2} {:>6.2}  {}",
            point.model.display_name(),
            point.k,
            point.threshold,
            point.ingest_cost_norm,
            point.query_latency_norm,
            point.precision,
            point.recall,
            if on_pareto { "*" } else { "" }
        );
    }

    println!("\npolicy picks:");
    for policy in TradeoffPolicy::all() {
        match selection.choose(policy) {
            Some(chosen) => println!(
                "  {:<18} -> {} (K={}, T={:.1}): ingest {:.0}x cheaper, queries {:.0}x faster than the brute-force baselines",
                policy.name(),
                chosen.point.model.display_name(),
                chosen.point.k,
                chosen.point.threshold,
                1.0 / chosen.point.ingest_cost_norm,
                1.0 / chosen.point.query_latency_norm
            ),
            None => println!("  {:<18} -> no viable configuration", policy.name()),
        }
    }

    act_two_live_drift(&profile);
}

/// Act 2: the same policies, live — each one drives an adaptive service
/// through a class-distribution drift and re-selects on its own terms.
fn act_two_live_drift(profile: &StreamProfile) {
    const PRE_SECS: f64 = 100.0;
    const POST_SECS: f64 = 100.0;
    const TICK_SECS: f64 = 5.0;

    println!("\n=== act 2: the policies, live (drift-aware reconfiguration) ===");
    println!(
        "{} runs {PRE_SECS:.0}s with its own class mix, then drifts to a news palette for \
         {POST_SECS:.0}s;",
        profile.name
    );
    println!("each policy's controller detects the drift and re-selects on a live window.\n");

    let base = VideoDataset::generate(profile.clone(), PRE_SECS);
    let drifted =
        VideoDataset::generate(profile.drifted("night", StreamDomain::News, 11), POST_SECS);
    let workload = base.continue_with(&drifted);
    let per_tick = (TICK_SECS * profile.fps as f64) as usize;

    println!(
        "{:<18} {:>9} {:>42} {:>4} {:>6} {:>11}",
        "policy", "reconfigs", "model after drift", "K", "T", "adapt GPU(s)"
    );
    for policy in TradeoffPolicy::all() {
        let dir = std::env::temp_dir().join(format!("focus_tradeoff_act2_{}", policy.name()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig {
            worker: StreamWorkerConfig {
                bootstrap_secs: 30.0,
                retrain_interval_secs: 1e9,
                gt_label_fraction: 0.05,
                ls: 8,
                ..StreamWorkerConfig::default()
            },
            seal: SealPolicy::every_secs(20.0),
            adaptation: Some(AdaptationConfig {
                audit_fraction: 0.08,
                drift_threshold: 0.45,
                window_secs: 30.0,
                cooldown_secs: 60.0,
                policy,
                ..AdaptationConfig::default()
            }),
            ..ServiceConfig::default()
        };
        let mut service = FocusService::create(&dir, config, GroundTruthCnn::resnet152()).unwrap();
        service
            .register_stream(profile.stream_id, profile.fps)
            .unwrap();
        for chunk in workload.frames.chunks(per_tick) {
            service.advance(chunk).unwrap();
            service.maintain().unwrap();
        }
        let stats = service.stats();
        let model = service.stream_model(profile.stream_id).unwrap();
        let adapt_gpu = stats
            .gpu
            .submitted_by_phase
            .get("audit")
            .copied()
            .unwrap_or(0.0)
            + stats
                .gpu
                .submitted_by_phase
                .get("selection")
                .copied()
                .unwrap_or(0.0);
        let (k, threshold) = service
            .stream_controller(profile.stream_id)
            .and_then(|c| c.last_reconfiguration())
            .map(|r| (r.selection.params.k, r.selection.params.cluster_threshold))
            .unwrap_or((0, 0.0));
        println!(
            "{:<18} {:>9} {:>42} {:>4} {:>6.1} {:>11.1}",
            policy.name(),
            stats.reconfigurations,
            model.descriptor.display_name(),
            k,
            threshold,
            adapt_gpu,
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    println!(
        "\n(the controller charges audit labels and re-selection sweeps to the shared GPU \
         scheduler — adapting is a visible, bounded cost; see docs/adaptation.md)"
    );
}
