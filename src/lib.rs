//! Focus — low-latency, low-cost querying on large video datasets.
//!
//! This is the façade crate of the workspace: it re-exports every
//! sub-crate under one roof so applications can depend on `focus` alone.
//!
//! The workspace reproduces the system described in *"Focus: Querying Large
//! Video Datasets with Low Latency and Low Cost"* (Hsieh et al., OSDI
//! 2018). See `README.md` for the architecture overview, `DESIGN.md` for
//! the system inventory and the substitutions made for unavailable
//! hardware/data, and `EXPERIMENTS.md` for the paper-vs-measured record of
//! every table and figure.
//!
//! # Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`video`] | `focus-video` | Synthetic stream substrate: the 13 Table-1 stream profiles, frame/object/track generation, motion filtering, frame sampling |
//! | [`cnn`] | `focus-cnn` | Simulated CNN substrate: ground-truth CNN, compressed cheap CNNs, per-stream specialization, feature vectors, GPU cost model |
//! | [`cluster`] | `focus-cluster` | Single-pass incremental clustering |
//! | [`index`] | `focus-index` | The top-K inverted index with camera/time/Kx filtering, shard merging and persistence |
//! | [`runtime`] | `focus-runtime` | GPU accounting, the GPU-cluster latency model, the reusable worker pool, the shared ingest/query `GpuScheduler` |
//! | [`core`] | `focus-core` | The Focus system itself: the shared `FramePipeline`, batch/streaming/sharded ingest drivers, the query subsystem (serial engine plus the concurrent, batched, cached `QueryServer`), the live `FocusService`, parameter selection, policies, baselines, experiment runner |
//!
//! # Quick start
//!
//! ```
//! use focus::prelude::*;
//!
//! // Record one minute of a busy synthetic traffic camera.
//! let profile = focus::video::profile::profile_by_name("auburn_c").unwrap();
//! let dataset = focus::video::VideoDataset::generate(profile, 60.0);
//!
//! // Ingest with a cheap compressed CNN, then query the dominant class.
//! let meter = focus::runtime::GpuMeter::new();
//! let ingest = IngestEngine::new(
//!     IngestCnn::generic(focus::cnn::ModelSpec::cheap_cnn_1()),
//!     IngestParams { k: 10, ..IngestParams::default() },
//! )
//! .ingest(&dataset, &meter);
//!
//! let engine = QueryEngine::new(
//!     focus::cnn::GroundTruthCnn::resnet152(),
//!     focus::runtime::GpuClusterSpec::new(10),
//! );
//! let class = dataset.dominant_classes(1)[0];
//! let result = engine.query(&ingest, class, &focus::index::QueryFilter::any(), &meter);
//! assert!(!result.frames.is_empty());
//! ```
//!
//! # Multi-camera workloads
//!
//! A multi-camera recording is ingested shard-parallel — one
//! [`FramePipeline`](focus_core::pipeline::FramePipeline) per stream on a
//! worker pool — and merged into one index; the result is byte-identical to
//! a serial run for any shard count:
//!
//! ```
//! use focus::prelude::*;
//!
//! let datasets: Vec<_> = ["auburn_c", "lausanne"]
//!     .iter()
//!     .map(|name| {
//!         let profile = focus::video::profile::profile_by_name(name).unwrap();
//!         focus::video::VideoDataset::generate(profile, 30.0)
//!     })
//!     .collect();
//!
//! let meter = focus::runtime::GpuMeter::new();
//! let sharded = ShardedIngest::new(
//!     IngestCnn::generic(focus::cnn::ModelSpec::cheap_cnn_1()),
//!     IngestParams::default(),
//!     2, // shards (worker threads)
//! );
//! let combined = sharded.ingest(&datasets, &meter).into_combined();
//! assert_eq!(combined.index.streams().len(), 2);
//!
//! let engine = QueryEngine::new(
//!     focus::cnn::GroundTruthCnn::resnet152(),
//!     focus::runtime::GpuClusterSpec::new(4),
//! );
//! let class = datasets[0].dominant_classes(1)[0];
//! let result = engine.query(&combined, class, &focus::index::QueryFilter::any(), &meter);
//! assert!(result.matched_clusters > 0);
//! ```
//!
//! # Concurrent query serving
//!
//! Heavy query traffic goes through
//! [`QueryServer`](focus_core::query_server::QueryServer) instead of the
//! serial engine: requests are planned concurrently, the union of their
//! candidate centroids is deduplicated and verified through the batched
//! GT-CNN path, and verdicts are memoized across queries under the current
//! ground-truth epoch. Results are byte-identical to the serial engine with
//! strictly fewer GT-CNN inferences on overlapping workloads — see
//! `docs/query-path.md` for the full walkthrough.

pub use focus_cluster as cluster;
pub use focus_cnn as cnn;
pub use focus_core as core;
pub use focus_index as index;
pub use focus_runtime as runtime;
pub use focus_video as video;

/// The most commonly used types from across the workspace.
pub mod prelude {
    pub use focus_cnn::{Classifier, GroundTruthCnn, ModelSpec};
    pub use focus_core::prelude::*;
    pub use focus_index::QueryFilter;
    pub use focus_runtime::{GpuClusterSpec, GpuMeter};
    pub use focus_video::{ClassId, StreamProfile, VideoDataset};
}
